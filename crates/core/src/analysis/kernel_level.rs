//! A8–A10 — GPU kernel-level analyses (§III-D3): the kernel information
//! table, kernel roofline, and aggregation by kernel name.

use crate::profile::LeveledProfile;
use crate::roofline::{classify, RooflinePoint};
use xsp_gpu::System;

/// One row of the A8 kernel-information table.
#[derive(Debug, Clone)]
pub struct KernelInfoRow {
    /// Launch order.
    pub order: usize,
    /// Kernel name.
    pub name: String,
    /// Index of the invoking layer (when correlated).
    pub layer_index: Option<usize>,
    /// Kernel latency, ms.
    pub latency_ms: f64,
    /// Gflops executed.
    pub gflops: f64,
    /// DRAM reads, MB.
    pub dram_read_mb: f64,
    /// DRAM writes, MB.
    pub dram_write_mb: f64,
    /// Achieved occupancy, percent.
    pub occupancy_pct: f64,
    /// Arithmetic intensity, flops/byte.
    pub arithmetic_intensity: f64,
    /// Arithmetic throughput, Tflops/s.
    pub throughput_tflops: f64,
    /// Memory-bound on the profiled system?
    pub memory_bound: bool,
}

/// A8: per-kernel information with metrics and roofline classification.
pub fn a8_kernel_info(profile: &LeveledProfile, system: &System) -> Vec<KernelInfoRow> {
    profile
        .kernels()
        .iter()
        .map(|k| {
            let flops = k.flops.unwrap_or(0);
            let read = k.dram_read.unwrap_or(0);
            let write = k.dram_write.unwrap_or(0);
            let point = classify(k.name.clone(), flops, read, write, k.latency_ms, system);
            KernelInfoRow {
                order: k.order,
                name: k.name.clone(),
                layer_index: k.layer_index,
                latency_ms: k.latency_ms,
                gflops: flops as f64 / 1e9,
                dram_read_mb: read as f64 / 1e6,
                dram_write_mb: write as f64 / 1e6,
                occupancy_pct: k.occupancy.unwrap_or(0.0) * 100.0,
                arithmetic_intensity: point
                    .as_ref()
                    .map(|p| p.arithmetic_intensity)
                    .unwrap_or(0.0),
                throughput_tflops: point.as_ref().map(|p| p.throughput_tflops).unwrap_or(0.0),
                memory_bound: point.map(|p| p.memory_bound).unwrap_or(false),
            }
        })
        .collect()
}

/// A9: the kernel roofline scatter (Figure 6).
pub fn a9_kernel_roofline(profile: &LeveledProfile, system: &System) -> Vec<RooflinePoint> {
    profile
        .kernels()
        .iter()
        .filter_map(|k| {
            classify(
                k.name.clone(),
                k.flops?,
                k.dram_read.unwrap_or(0),
                k.dram_write.unwrap_or(0),
                k.latency_ms,
                system,
            )
        })
        .collect()
}

/// One row of the A10 by-name aggregation.
#[derive(Debug, Clone)]
pub struct KernelNameAggRow {
    /// Kernel name.
    pub name: String,
    /// Number of invocations.
    pub count: usize,
    /// Total latency, ms.
    pub latency_ms: f64,
    /// Share of total kernel latency, percent.
    pub latency_percent: f64,
    /// Total Gflops.
    pub gflops: f64,
    /// Total DRAM reads, MB.
    pub dram_read_mb: f64,
    /// Total DRAM writes, MB.
    pub dram_write_mb: f64,
    /// Latency-weighted achieved occupancy, percent.
    pub occupancy_pct: f64,
    /// Aggregate arithmetic intensity.
    pub arithmetic_intensity: f64,
    /// Aggregate arithmetic throughput, Tflops/s.
    pub throughput_tflops: f64,
    /// Memory-bound?
    pub memory_bound: bool,
}

/// A10: kernel information aggregated by kernel name. Latency/flops/traffic
/// are sums; occupancy is the latency-weighted mean; intensity and
/// throughput are recomputed from the aggregates (§III-D3).
pub fn a10_kernel_info_by_name(profile: &LeveledProfile, system: &System) -> Vec<KernelNameAggRow> {
    let kernels = profile.kernels();
    let total_latency: f64 = kernels.iter().map(|k| k.latency_ms).sum();
    let mut rows: Vec<KernelNameAggRow> = Vec::new();
    for k in &kernels {
        let flops = k.flops.unwrap_or(0) as f64 / 1e9;
        let read = k.dram_read.unwrap_or(0) as f64 / 1e6;
        let write = k.dram_write.unwrap_or(0) as f64 / 1e6;
        let occ = k.occupancy.unwrap_or(0.0) * 100.0;
        match rows.iter_mut().find(|r| r.name == k.name) {
            Some(r) => {
                r.count += 1;
                r.latency_ms += k.latency_ms;
                r.gflops += flops;
                r.dram_read_mb += read;
                r.dram_write_mb += write;
                r.occupancy_pct += occ * k.latency_ms;
            }
            None => rows.push(KernelNameAggRow {
                name: k.name.clone(),
                count: 1,
                latency_ms: k.latency_ms,
                gflops: flops,
                dram_read_mb: read,
                dram_write_mb: write,
                occupancy_pct: occ * k.latency_ms,
                latency_percent: 0.0,
                arithmetic_intensity: 0.0,
                throughput_tflops: 0.0,
                memory_bound: false,
            }),
        }
    }
    for r in &mut rows {
        r.occupancy_pct = if r.latency_ms > 0.0 {
            r.occupancy_pct / r.latency_ms
        } else {
            0.0
        };
        r.latency_percent = if total_latency > 0.0 {
            100.0 * r.latency_ms / total_latency
        } else {
            0.0
        };
        let bytes = (r.dram_read_mb + r.dram_write_mb) * 1e6;
        r.arithmetic_intensity = if bytes > 0.0 {
            r.gflops * 1e9 / bytes
        } else {
            f64::INFINITY
        };
        r.throughput_tflops = if r.latency_ms > 0.0 {
            r.gflops * 1e9 / (r.latency_ms / 1e3) / 1e12
        } else {
            0.0
        };
        r.memory_bound = r.arithmetic_intensity < system.ideal_arithmetic_intensity();
    }
    rows.sort_by(|a, b| b.latency_ms.partial_cmp(&a.latency_ms).unwrap());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileRequest, Xsp, XspConfig};
    use xsp_framework::FrameworkKind;
    use xsp_gpu::systems;
    use xsp_models::zoo;

    fn profile() -> (LeveledProfile, System) {
        let system = systems::tesla_v100();
        let xsp = Xsp::new(XspConfig::new(system.clone(), FrameworkKind::TensorFlow).runs(1));
        (
            xsp.run(ProfileRequest::new(
                &zoo::by_name("MobileNet_v1_0.25_128").unwrap().graph(4),
            )),
            system,
        )
    }

    #[test]
    fn a8_rows_have_metrics() {
        let (p, sys) = profile();
        let rows = a8_kernel_info(&p, &sys);
        assert!(!rows.is_empty());
        let with_flops = rows.iter().filter(|r| r.gflops > 0.0).count();
        assert!(with_flops > 0, "conv/gemm kernels must report flops");
        for r in &rows {
            assert!(r.latency_ms > 0.0);
            assert!(r.occupancy_pct >= 0.0 && r.occupancy_pct <= 100.0);
        }
    }

    #[test]
    fn a9_points_match_a8_classification() {
        let (p, sys) = profile();
        let a8 = a8_kernel_info(&p, &sys);
        let a9 = a9_kernel_roofline(&p, &sys);
        assert_eq!(
            a9.len(),
            a8.len(),
            "all kernels carry metrics in full-metric runs"
        );
        // element-wise kernels are memory-bound; conv kernels compute-bound
        let eigen_points: Vec<_> = a9.iter().filter(|p| p.name.contains("Eigen")).collect();
        assert!(!eigen_points.is_empty());
        assert!(eigen_points.iter().all(|p| p.memory_bound));
    }

    #[test]
    fn a10_aggregates_consistently() {
        let (p, sys) = profile();
        let a8 = a8_kernel_info(&p, &sys);
        let a10 = a10_kernel_info_by_name(&p, &sys);
        // counts sum to kernel count
        let total: usize = a10.iter().map(|r| r.count).sum();
        assert_eq!(total, a8.len());
        // latency percents sum to 100
        let pct: f64 = a10.iter().map(|r| r.latency_percent).sum();
        assert!((pct - 100.0).abs() < 1e-6);
        // sums match
        let lat8: f64 = a8.iter().map(|r| r.latency_ms).sum();
        let lat10: f64 = a10.iter().map(|r| r.latency_ms).sum();
        assert!((lat8 - lat10).abs() < 1e-9);
        // sorted by latency descending
        for w in a10.windows(2) {
            assert!(w[0].latency_ms >= w[1].latency_ms);
        }
        // unique names
        let mut names: Vec<&str> = a10.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a10.len());
    }

    #[test]
    fn weighted_occupancy_is_bounded() {
        let (p, sys) = profile();
        for r in a10_kernel_info_by_name(&p, &sys) {
            assert!(
                (0.0..=100.0).contains(&r.occupancy_pct),
                "{}: {}",
                r.name,
                r.occupancy_pct
            );
        }
    }
}
