//! AX4 — inference-serving analyses (the serving-tier extension).
//!
//! Where AX1–AX3 interrogate one inference, AX4 interrogates a whole
//! continuous-batching simulation ([`crate::serving`]): how generation
//! throughput scales with decode-batch occupancy, where wall-clock goes
//! between prefill, decode, and idle, and where the KV-cache decode
//! kernels sit on the roofline (spoiler: pinned to the bandwidth ceiling).
//!
//! This module also owns the structured `--ax` flag parser the CLI
//! subcommands share, mirroring [`crate::profile::ProfilingLevel::parse`].

use std::fmt;

use super::workload::{kernel_family, KernelFamily};
use crate::profile::LeveledProfile;
use crate::roofline::{classify, RooflinePoint};
use crate::serving::{RequestRecord, ServingReport, StepKind};
use xsp_gpu::System;

/// One row of the occupancy/throughput aggregation: all decode steps that
/// ran at the same batch size.
#[derive(Debug, Clone)]
pub struct OccupancyThroughputRow {
    /// Decode batch size of the grouped steps.
    pub batch: usize,
    /// Occupancy at that batch, percent of the scheduler's `max_batch`.
    pub occupancy_percent: f64,
    /// Number of decode steps in the group.
    pub steps: usize,
    /// Tokens the group emitted.
    pub tokens: usize,
    /// Total latency of the group, ms.
    pub latency_ms: f64,
    /// Generation throughput within the group, tokens/second.
    pub tokens_per_s: f64,
}

/// AX4a: generation throughput as a function of decode-batch occupancy,
/// one row per observed batch size (ascending). The serving counterpart of
/// the paper's batch-sweep analyses: decode steps are bandwidth-bound, so
/// tokens/second scales near-linearly with occupancy while per-step
/// latency barely moves.
pub fn ax4_occupancy_throughput(report: &ServingReport) -> Vec<OccupancyThroughputRow> {
    let mut rows: Vec<OccupancyThroughputRow> = Vec::new();
    for s in &report.steps {
        let StepKind::Decode { batch, .. } = &s.kind else {
            continue;
        };
        let row = match rows.iter_mut().find(|r| r.batch == *batch) {
            Some(row) => row,
            None => {
                rows.push(OccupancyThroughputRow {
                    batch: *batch,
                    occupancy_percent: 100.0 * *batch as f64 / report.max_batch as f64,
                    steps: 0,
                    tokens: 0,
                    latency_ms: 0.0,
                    tokens_per_s: 0.0,
                });
                rows.last_mut().unwrap()
            }
        };
        row.steps += 1;
        row.tokens += batch;
        row.latency_ms += s.latency_ms;
    }
    for row in &mut rows {
        row.tokens_per_s = if row.latency_ms > 0.0 {
            row.tokens as f64 / (row.latency_ms / 1000.0)
        } else {
            0.0
        };
    }
    rows.sort_by_key(|r| r.batch);
    rows
}

/// AX4b: where the serving makespan went.
#[derive(Debug, Clone)]
pub struct LatencySplit {
    /// Time in batch-1 prefill steps, ms.
    pub prefill_ms: f64,
    /// Time in decode steps, ms.
    pub decode_ms: f64,
    /// Time with no runnable step, ms.
    pub idle_ms: f64,
    /// Prefill share of the makespan, percent.
    pub prefill_percent: f64,
    /// Decode share of the makespan, percent.
    pub decode_percent: f64,
    /// Idle share of the makespan, percent.
    pub idle_percent: f64,
    /// Mean arrival → admission wait, ms.
    pub mean_queue_wait_ms: f64,
    /// Mean arrival → first token, ms.
    pub mean_ttft_ms: f64,
    /// Mean time per output token after the first, ms.
    pub mean_tpot_ms: f64,
    /// p99-ish (max) time to first token, ms.
    pub max_ttft_ms: f64,
}

/// AX4b: splits the serving makespan into prefill/decode/idle and
/// summarizes the request-side latency metrics (queue wait, TTFT, TPOT).
pub fn ax4_latency_split(report: &ServingReport) -> LatencySplit {
    let prefill_ms = report.prefill_ms();
    let decode_ms = report.decode_ms();
    let idle_ms = report.idle_ms();
    let pct = |part: f64| {
        if report.makespan_ms > 0.0 {
            100.0 * part / report.makespan_ms
        } else {
            0.0
        }
    };
    LatencySplit {
        prefill_ms,
        decode_ms,
        idle_ms,
        prefill_percent: pct(prefill_ms),
        decode_percent: pct(decode_ms),
        idle_percent: pct(idle_ms),
        mean_queue_wait_ms: report.mean_queue_wait_ms(),
        mean_ttft_ms: report.mean_ttft_ms(),
        mean_tpot_ms: report.mean_tpot_ms(),
        max_ttft_ms: report
            .requests
            .iter()
            .map(RequestRecord::ttft_ms)
            .fold(0.0, f64::max),
    }
}

/// AX4c: roofline points of only the KV-decode-family kernels of a decode
/// step profile (use [`ServingReport::representative_decode`]) — the
/// scatter that shows the third compute regime: every decode kernel sits
/// left of the ridge point on the bandwidth ceiling, unlike the conv- and
/// GEMM-bound tiers.
pub fn ax4_cache_roofline(profile: &LeveledProfile, system: &System) -> Vec<RooflinePoint> {
    profile
        .kernels()
        .iter()
        .filter(|k| kernel_family(&k.name) == KernelFamily::KvDecode)
        .filter_map(|k| {
            classify(
                k.name.clone(),
                k.flops?,
                k.dram_read.unwrap_or(0),
                k.dram_write.unwrap_or(0),
                k.latency_ms,
                system,
            )
        })
        .collect()
}

/// The extended analyses the CLI exposes beyond A1–A15, one per workload
/// tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxAnalysis {
    /// AX1 — library-call table (needs the library level).
    Ax1,
    /// AX2 — host/dispatch attribution (needs the host level).
    Ax2,
    /// AX3 — workload regime: kernel families and the GEMM roofline.
    Ax3,
    /// AX4 — inference serving: occupancy/throughput, latency split,
    /// KV-cache roofline.
    Ax4,
}

impl AxAnalysis {
    /// The accepted `--ax` spellings, grouped per analysis (used by
    /// [`ParseAxError`] to enumerate valid values).
    pub const SPELLINGS: [(&'static str, AxAnalysis); 4] = [
        ("1|ax1|library", AxAnalysis::Ax1),
        ("2|ax2|host", AxAnalysis::Ax2),
        ("3|ax3|workload", AxAnalysis::Ax3),
        ("4|ax4|serving", AxAnalysis::Ax4),
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AxAnalysis::Ax1 => "ax1",
            AxAnalysis::Ax2 => "ax2",
            AxAnalysis::Ax3 => "ax3",
            AxAnalysis::Ax4 => "ax4",
        }
    }

    /// Parses the CLI `--ax` spelling: `1`/`ax1`/`library` → AX1, and so
    /// on. Rejection carries the offending value and enumerates every
    /// accepted spelling (see [`ParseAxError`]), the same contract as
    /// [`crate::profile::ProfilingLevel::parse`].
    pub fn parse(raw: &str) -> Result<Self, ParseAxError> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "ax1" | "library" => Ok(AxAnalysis::Ax1),
            "2" | "ax2" | "host" => Ok(AxAnalysis::Ax2),
            "3" | "ax3" | "workload" => Ok(AxAnalysis::Ax3),
            "4" | "ax4" | "serving" => Ok(AxAnalysis::Ax4),
            _ => Err(ParseAxError {
                value: raw.to_owned(),
            }),
        }
    }
}

/// Rejection produced by [`AxAnalysis::parse`]: carries the rejected
/// spelling and renders every valid one, so `xsp analyze`, `profile
/// --analyses`, and the daemon surface the same self-explanatory message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAxError {
    /// The spelling that failed to parse, verbatim.
    pub value: String,
}

impl fmt::Display for ParseAxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown analysis '{}'; valid values:", self.value)?;
        for (i, (spellings, ax)) in AxAnalysis::SPELLINGS.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            write!(f, "{sep}{spellings} ({})", ax.label())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseAxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfilingLevel, Xsp, XspConfig};
    use crate::serving::{simulate, ArrivalTrace, ServingConfig, ServingModel};
    use xsp_framework::FrameworkKind;
    use xsp_gpu::systems;

    fn report(level: ProfilingLevel) -> ServingReport {
        let xsp =
            Xsp::new(XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow).runs(1));
        let trace = ArrivalTrace::synthetic(11, 5, 50.0, (16, 32), (3, 8));
        simulate(
            &xsp,
            ServingModel::Gpt2Small,
            &trace,
            &ServingConfig::default().max_batch(4).level(level),
        )
    }

    #[test]
    fn occupancy_rows_cover_all_decode_tokens() {
        let r = report(ProfilingLevel::Model);
        let rows = ax4_occupancy_throughput(&r);
        assert!(!rows.is_empty());
        assert!(rows.windows(2).all(|w| w[0].batch < w[1].batch));
        let decode_tokens: usize = rows.iter().map(|r| r.tokens).sum();
        // tokens = prefill first-tokens + decode tokens
        assert_eq!(decode_tokens + r.requests.len(), r.tokens_emitted);
        for row in &rows {
            assert!(row.occupancy_percent > 0.0 && row.occupancy_percent <= 100.0);
            assert!(row.tokens_per_s > 0.0);
        }
        // bandwidth-bound decode: fuller batches generate faster
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        if first.batch < last.batch {
            assert!(last.tokens_per_s > first.tokens_per_s);
        }
    }

    #[test]
    fn latency_split_percentages_sum() {
        let r = report(ProfilingLevel::Model);
        let split = ax4_latency_split(&r);
        let total = split.prefill_percent + split.decode_percent + split.idle_percent;
        assert!((total - 100.0).abs() < 1e-6, "{total}");
        assert!(split.mean_ttft_ms >= split.mean_queue_wait_ms);
        assert!(split.max_ttft_ms >= split.mean_ttft_ms);
    }

    #[test]
    fn cache_roofline_is_bandwidth_bound() {
        let r = report(ProfilingLevel::ModelLayerGpu);
        let profile = r.representative_decode.as_ref().expect("decode steps ran");
        let points = ax4_cache_roofline(profile, &systems::tesla_v100());
        assert!(!points.is_empty());
        // the third regime: every KV-decode kernel is memory-bound
        assert!(
            points.iter().all(|p| p.memory_bound),
            "compute-bound decode kernel: {:?}",
            points.iter().find(|p| !p.memory_bound)
        );
    }

    #[test]
    fn ax_parser_accepts_every_spelling() {
        for (spellings, ax) in AxAnalysis::SPELLINGS {
            for s in spellings.split('|') {
                assert_eq!(AxAnalysis::parse(s).unwrap(), ax, "{s}");
                assert_eq!(AxAnalysis::parse(&s.to_uppercase()).unwrap(), ax);
            }
        }
    }

    #[test]
    fn ax_parse_error_lists_valid_spellings() {
        let err = AxAnalysis::parse("ax9").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown analysis 'ax9'"), "{msg}");
        for (spellings, _) in AxAnalysis::SPELLINGS {
            assert!(msg.contains(spellings), "{msg} missing {spellings}");
        }
    }
}
