//! AX3 — workload-regime analysis (transformer-tier extension).
//!
//! The paper's 65-model zoo is convolution-dominated: its rooflines only
//! ever exercise the conv-bound regime. The transformer tier adds models
//! whose GPU time goes to cuBLAS GEMMs instead, and this module makes that
//! distinction a first-class analysis: classify every kernel into a family
//! (dense GEMM, convolution, element-wise, ...), aggregate latency shares
//! per family, and expose the roofline points of just the GEMM kernels so
//! a GEMM-bound model's regime can be compared against a conv baseline.

use crate::profile::LeveledProfile;
use crate::roofline::{classify, RooflinePoint};
use xsp_gpu::System;

/// The family a GPU kernel belongs to, by library origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFamily {
    /// Dense cuBLAS GEMMs: `*_sgemm_*` single and strided-batched kernels
    /// (attention projections and score/context products, FC/FFN layers).
    Gemm,
    /// KV-cache decode kernels: seq=1 GEMV-shaped projections
    /// (`*_sgemv_decode_*`), cached-attention score/context products, the
    /// cache-append copy, decode softmax, and the fused
    /// `flash_attention_decode` kernel. These stream weights or cache once
    /// per token and are bandwidth-bound almost regardless of batch.
    KvDecode,
    /// cuDNN convolutions: `*_scudnn_*`, implicit GEMM, depthwise,
    /// transform-domain (`fft2d`/`cgemm`) and their helper kernels.
    Convolution,
    /// Element-wise kernels (Eigen functors / mshadow ops / GELU).
    Elementwise,
    /// Normalization and softmax kernels (batch-norm, layer-norm,
    /// softmax variants, LRN).
    Normalization,
    /// Reductions and pooling.
    Reduction,
    /// Pure data movement: transpose/concat/pad/gather/resize copies.
    DataMovement,
    /// Anything else (detection `Where` scans, NMS helpers, ...).
    Other,
}

impl KernelFamily {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            KernelFamily::Gemm => "gemm",
            KernelFamily::KvDecode => "kv-decode",
            KernelFamily::Convolution => "convolution",
            KernelFamily::Elementwise => "elementwise",
            KernelFamily::Normalization => "normalization",
            KernelFamily::Reduction => "reduction",
            KernelFamily::DataMovement => "data-movement",
            KernelFamily::Other => "other",
        }
    }
}

/// Classifies a kernel by its (library-conventional) name. Decode markers
/// are checked first because the decode tier reuses library vocabulary —
/// `decode_softmax_warp_fw` would otherwise land in [`Normalization`] and
/// `kv_cache_append_kernel` in [`DataMovement`]. Convolution markers are
/// checked before the GEMM marker because cuDNN's implicit-GEMM
/// convolution kernels carry `sgemm` in their names too
/// (`implicit_convolve_sgemm`).
///
/// [`Normalization`]: KernelFamily::Normalization
/// [`DataMovement`]: KernelFamily::DataMovement
pub fn kernel_family(name: &str) -> KernelFamily {
    let decode_markers = ["decode", "kv_cache", "flash_attention", "sgemv"];
    if decode_markers.iter().any(|m| name.contains(m)) {
        return KernelFamily::KvDecode;
    }
    let conv_markers = [
        "scudnn",
        "convolve",
        "depthwise_fprop",
        "fft2d",
        "cgemm",
        "OffsetComp",
        "winograd",
    ];
    if conv_markers.iter().any(|m| name.contains(m)) {
        return KernelFamily::Convolution;
    }
    if name.contains("sgemm") {
        return KernelFamily::Gemm;
    }
    if name.contains("softmax")
        || name.contains("bn_fw")
        || name.contains("layer_norm")
        || name.contains("lrn")
    {
        return KernelFamily::Normalization;
    }
    if name.contains("Eigen") || name.contains("mshadow") || name.contains("gelu") {
        return KernelFamily::Elementwise;
    }
    if name.contains("Reduce") || name.contains("pooling") {
        return KernelFamily::Reduction;
    }
    let movement = [
        "Transpose",
        "Concat",
        "Pad",
        "gather",
        "Resize",
        "memcpy",
        "Shuffle",
    ];
    if movement.iter().any(|m| name.contains(m)) {
        return KernelFamily::DataMovement;
    }
    KernelFamily::Other
}

/// One row of the per-family latency aggregation.
#[derive(Debug, Clone)]
pub struct FamilyShareRow {
    /// Kernel family.
    pub family: KernelFamily,
    /// Kernel invocations in the family.
    pub count: usize,
    /// Total latency, ms.
    pub latency_ms: f64,
    /// Share of total kernel latency, percent.
    pub latency_percent: f64,
}

/// AX3a: GPU kernel latency aggregated by kernel family, sorted by share
/// descending. The top family names the model's compute regime.
pub fn ax3_family_shares(profile: &LeveledProfile) -> Vec<FamilyShareRow> {
    let kernels = profile.kernels();
    let total: f64 = kernels.iter().map(|k| k.latency_ms).sum();
    let mut rows: Vec<FamilyShareRow> = Vec::new();
    for k in &kernels {
        let family = kernel_family(&k.name);
        match rows.iter_mut().find(|r| r.family == family) {
            Some(r) => {
                r.count += 1;
                r.latency_ms += k.latency_ms;
            }
            None => rows.push(FamilyShareRow {
                family,
                count: 1,
                latency_ms: k.latency_ms,
                latency_percent: 0.0,
            }),
        }
    }
    for r in &mut rows {
        r.latency_percent = if total > 0.0 {
            100.0 * r.latency_ms / total
        } else {
            0.0
        };
    }
    rows.sort_by(|a, b| b.latency_ms.partial_cmp(&a.latency_ms).unwrap());
    rows
}

/// The dominant compute regime of a model's GPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeRegime {
    /// Convolution kernels carry the largest latency share (the paper's 65
    /// CNN models).
    ConvBound,
    /// Dense GEMM kernels carry the largest share (the transformer tier).
    GemmBound,
    /// KV-cache decode kernels carry the largest share (the inference-
    /// serving tier's seq=1 decode steps): GPU time goes to streaming
    /// weights and cache, not to math.
    BandwidthBound,
    /// Neither — host-heavy detection models, copy-dominated graphs.
    Mixed,
}

/// Names the regime from an already-computed share table (the rows are
/// sorted by latency, so the first family holds the plurality). Use this —
/// with one [`ax3_family_shares`] call — when also reading shares or the
/// GEMM percent, instead of re-aggregating per question.
pub fn regime_of(shares: &[FamilyShareRow]) -> ComputeRegime {
    match shares.first().map(|r| r.family) {
        Some(KernelFamily::Convolution) => ComputeRegime::ConvBound,
        Some(KernelFamily::Gemm) => ComputeRegime::GemmBound,
        Some(KernelFamily::KvDecode) => ComputeRegime::BandwidthBound,
        _ => ComputeRegime::Mixed,
    }
}

/// GEMM share of an already-computed share table, percent.
pub fn gemm_percent_of(shares: &[FamilyShareRow]) -> f64 {
    shares
        .iter()
        .find(|r| r.family == KernelFamily::Gemm)
        .map(|r| r.latency_percent)
        .unwrap_or(0.0)
}

/// AX3b: names the regime by the largest family share. A family must carry
/// a plurality of kernel latency to claim the model. Convenience over
/// [`regime_of`] when only the regime is needed.
pub fn ax3_compute_regime(profile: &LeveledProfile) -> ComputeRegime {
    regime_of(&ax3_family_shares(profile))
}

/// GEMM latency share of total kernel latency, percent — the GEMM-bound
/// counterpart of `convolution_latency_percent` (which is layer-level; this
/// one is kernel-level because attention layers mix GEMM and softmax
/// kernels within one layer). Convenience over [`gemm_percent_of`] when
/// only the percentage is needed.
pub fn gemm_latency_percent(profile: &LeveledProfile) -> f64 {
    gemm_percent_of(&ax3_family_shares(profile))
}

/// AX3c: roofline points of only the GEMM-family kernels — the scatter that
/// shows the attention chain straddling the ridge point while conv kernels
/// sit deep in the compute-bound region.
pub fn ax3_gemm_roofline(profile: &LeveledProfile, system: &System) -> Vec<RooflinePoint> {
    profile
        .kernels()
        .iter()
        .filter(|k| kernel_family(&k.name) == KernelFamily::Gemm)
        .filter_map(|k| {
            classify(
                k.name.clone(),
                k.flops?,
                k.dram_read.unwrap_or(0),
                k.dram_write.unwrap_or(0),
                k.latency_ms,
                system,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileRequest, Xsp, XspConfig};
    use xsp_framework::FrameworkKind;
    use xsp_gpu::systems;
    use xsp_models::{transformer, zoo};

    fn xsp() -> Xsp {
        Xsp::new(XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow).runs(1))
    }

    #[test]
    fn family_classifier_separates_conv_from_gemm() {
        assert_eq!(kernel_family("volta_sgemm_128x128_tn"), KernelFamily::Gemm);
        assert_eq!(
            kernel_family("volta_sgemm_64x64_nn_batched"),
            KernelFamily::Gemm
        );
        // the tricky one: conv kernels with "sgemm" in the name
        assert_eq!(
            kernel_family("cudnn::detail::implicit_convolve_sgemm"),
            KernelFamily::Convolution
        );
        assert_eq!(
            kernel_family("volta_scudnn_128x64_relu_interior_nn_v1"),
            KernelFamily::Convolution
        );
        assert_eq!(
            kernel_family("volta_cgemm_32x32_tn"),
            KernelFamily::Convolution
        );
        assert_eq!(
            kernel_family("fused_scaled_masked_softmax_warp_fw"),
            KernelFamily::Normalization
        );
        assert_eq!(
            kernel_family("layer_norm_fused_kernel<float>"),
            KernelFamily::Normalization
        );
        assert_eq!(
            kernel_family("gelu_tanh_kernel<float>"),
            KernelFamily::Elementwise
        );
        assert_eq!(
            kernel_family("Eigen::internal::scalar_max_op"),
            KernelFamily::Elementwise
        );
        assert_eq!(
            kernel_family("embedding_gather_kernel"),
            KernelFamily::DataMovement
        );
    }

    #[test]
    fn decode_markers_win_over_library_vocabulary() {
        assert_eq!(
            kernel_family("volta_sgemv_decode_tn_v1"),
            KernelFamily::KvDecode
        );
        // "softmax" would match Normalization, "append" nothing — decode
        // markers must be checked first.
        assert_eq!(
            kernel_family("decode_softmax_warp_fw"),
            KernelFamily::KvDecode
        );
        assert_eq!(
            kernel_family("kv_cache_append_kernel<float>"),
            KernelFamily::KvDecode
        );
        assert_eq!(
            kernel_family("flash_attention_decode_kernel<float>"),
            KernelFamily::KvDecode
        );
        assert_eq!(
            kernel_family("volta_sgemv_decode_scores_batched"),
            KernelFamily::KvDecode
        );
    }

    #[test]
    fn decode_step_is_bandwidth_bound() {
        let p = xsp().run(ProfileRequest::new(&transformer::gpt2_decode_step(
            4,
            256,
            transformer::DecodeAttention::Materialized,
        )));
        assert_eq!(ax3_compute_regime(&p), ComputeRegime::BandwidthBound);
        // ...and the prefill graph stays GEMM-bound: the regimes are
        // genuinely different, not a classifier artifact.
        let prefill = xsp().run(ProfileRequest::new(&transformer::gpt2_small(4, 256)));
        assert_eq!(ax3_compute_regime(&prefill), ComputeRegime::GemmBound);
    }

    #[test]
    fn bert_is_gemm_bound_resnet_is_conv_bound() {
        let bert = xsp().run(ProfileRequest::new(&transformer::bert_base(1, 128)));
        assert_eq!(ax3_compute_regime(&bert), ComputeRegime::GemmBound);
        assert!(
            gemm_latency_percent(&bert) > 50.0,
            "BERT GEMM share {:.1}%",
            gemm_latency_percent(&bert)
        );
        let resnet = xsp().run(ProfileRequest::new(
            &zoo::by_name("ResNet_v1_50").unwrap().graph(4),
        ));
        assert_eq!(ax3_compute_regime(&resnet), ComputeRegime::ConvBound);
        assert!(gemm_latency_percent(&resnet) < 20.0);
    }

    #[test]
    fn family_shares_sum_to_100() {
        let p = xsp().run(ProfileRequest::new(&transformer::bert_base(1, 64)));
        let shares = ax3_family_shares(&p);
        let total: f64 = shares.iter().map(|r| r.latency_percent).sum();
        assert!((total - 100.0).abs() < 1e-6, "{total}");
        for w in shares.windows(2) {
            assert!(w[0].latency_ms >= w[1].latency_ms);
        }
    }

    #[test]
    fn gemm_roofline_covers_projections_and_batched_products() {
        let system = systems::tesla_v100();
        let p = xsp().run(ProfileRequest::new(&transformer::bert_base(1, 128)));
        let points = ax3_gemm_roofline(&p, &system);
        assert!(!points.is_empty());
        let batched: Vec<_> = points
            .iter()
            .filter(|p| p.name.contains("batched"))
            .collect();
        let single: Vec<_> = points
            .iter()
            .filter(|p| !p.name.contains("batched"))
            .collect();
        assert!(!batched.is_empty() && !single.is_empty());
        // seq-128 batched attention GEMMs sit under the V100 ridge...
        assert!(batched.iter().all(|p| p.memory_bound), "batched points");
        // ...while the projection/FFN GEMMs sit above it. (The one
        // exception is the tiny 768→2 SQuAD head GEMM, which is
        // bandwidth-starved like any skinny GEMM.)
        let compute_bound = single.iter().filter(|p| !p.memory_bound).count();
        assert!(
            compute_bound >= single.len() - 1,
            "projection points: {compute_bound}/{} compute-bound",
            single.len()
        );
    }
}
