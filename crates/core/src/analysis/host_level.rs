//! Extension analysis (§III-E): host/CPU-side dispatch characterization.
//!
//! "One can integrate CPU profilers into XSP to capture both CPU and GPU
//! information within the same timeline." With
//! [`crate::profile::XspConfig::host_level`] enabled, each executed op emits
//! a hardware-level `host:dispatch:<Type>` span covering its host-side
//! dispatch work; this analysis aggregates them per op type — the CPU
//! counterpart to A13's GPU/non-GPU split.

use crate::profile::LeveledProfile;
use xsp_trace::StackLevel;

/// One row of the host-dispatch aggregation.
#[derive(Debug, Clone)]
pub struct HostDispatchRow {
    /// Op type name ("Conv2D", "Where", ...).
    pub op_type: String,
    /// Number of dispatches.
    pub count: usize,
    /// Total host dispatch time, ms.
    pub total_ms: f64,
    /// Share of total dispatch time, percent.
    pub percent: f64,
}

/// Aggregates host-dispatch spans by op type (extension analysis "AX2").
/// Empty when the profile was collected without the host level enabled.
pub fn ax2_host_dispatch(profile: &LeveledProfile) -> Vec<HostDispatchRow> {
    let Some(run) = profile.mlg_runs.first().or(profile.metric_runs.first()) else {
        return Vec::new();
    };
    let mut rows: Vec<HostDispatchRow> = Vec::new();
    for s in run.trace.spans() {
        if s.span.level != StackLevel::Kernel {
            continue;
        }
        let Some(op_type) = s.span.name.strip_prefix("host:dispatch:") else {
            continue;
        };
        match rows.iter_mut().find(|r| r.op_type == op_type) {
            Some(r) => {
                r.count += 1;
                r.total_ms += s.span.duration_ms();
            }
            None => rows.push(HostDispatchRow {
                op_type: op_type.to_owned(),
                count: 1,
                total_ms: s.span.duration_ms(),
                percent: 0.0,
            }),
        }
    }
    let total: f64 = rows.iter().map(|r| r.total_ms).sum();
    for r in &mut rows {
        r.percent = if total > 0.0 {
            100.0 * r.total_ms / total
        } else {
            0.0
        };
    }
    rows.sort_by(|a, b| b.total_ms.partial_cmp(&a.total_ms).unwrap());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileRequest, Xsp, XspConfig};
    use xsp_framework::FrameworkKind;
    use xsp_gpu::systems;
    use xsp_models::zoo;

    fn profile(host_level: bool, model: &str, batch: usize) -> LeveledProfile {
        let cfg = XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow)
            .runs(1)
            .host_level(host_level);
        Xsp::new(cfg).run(ProfileRequest::new(
            &zoo::by_name(model).unwrap().graph(batch),
        ))
    }

    #[test]
    fn disabled_by_default() {
        let p = profile(false, "MobileNet_v1_0.25_128", 2);
        assert!(ax2_host_dispatch(&p).is_empty());
    }

    #[test]
    fn host_spans_aggregate_per_op_type() {
        let p = profile(true, "MobileNet_v1_0.25_128", 2);
        let rows = ax2_host_dispatch(&p);
        assert!(!rows.is_empty());
        let total_dispatches: usize = rows.iter().map(|r| r.count).sum();
        assert_eq!(
            total_dispatches,
            p.layers().len(),
            "one host span per executed op"
        );
        let pct: f64 = rows.iter().map(|r| r.percent).sum();
        assert!((pct - 100.0).abs() < 1e-6);
    }

    #[test]
    fn where_dispatch_dominates_detection_models() {
        let p = profile(true, "MLPerf_SSD_MobileNet_v1_300x300", 2);
        let rows = ax2_host_dispatch(&p);
        assert_eq!(
            rows[0].op_type, "Where",
            "Where carries the host time: {rows:?}"
        );
        assert!(rows[0].percent > 50.0);
    }

    #[test]
    fn host_spans_do_not_break_kernel_correlation() {
        let p = profile(true, "MobileNet_v1_0.25_128", 2);
        assert!(p.kernels().iter().all(|k| k.layer_index.is_some()));
    }
}
