//! The 15 automated analyses of Table I.
//!
//! Grouped, as in the paper, by the profiling information they require:
//!
//! | Analyses | Needs |
//! |---|---|
//! | A1 | model-level profile |
//! | A2–A7 | model + layer-level profiles |
//! | A8–A10 | GPU kernel-level profile |
//! | A11–A14 | layer + kernel profiles, correlated |
//! | A15 | model + kernel profiles |
//!
//! Every function consumes a [`crate::LeveledProfile`] (or a batch sweep)
//! and returns plain typed rows; rendering lives in [`crate::report`].

mod cross_level;
mod host_level;
mod kernel_level;
mod layer_level;
mod library_level;
mod model_level;
mod serving;
mod stage;
mod workload;

pub use cross_level::{
    a11_kernel_info_by_layer, a12_metrics_per_layer, a13_gpu_vs_nongpu, a14_layer_roofline,
    a15_model_aggregate, LayerKernelRow, LayerMetricsRow, ModelAggregateRow,
};
pub use host_level::{ax2_host_dispatch, HostDispatchRow};
pub use kernel_level::{
    a10_kernel_info_by_name, a8_kernel_info, a9_kernel_roofline, KernelInfoRow, KernelNameAggRow,
};
pub use layer_level::{
    a2_layer_info, a3_layer_latency, a4_layer_allocation, a5_layer_type_distribution,
    a6_latency_by_type, a7_allocation_by_type, convolution_latency_percent, LayerInfoRow,
    TypeAggRow,
};
pub use library_level::{
    ax1_library_calls, library_span_count, library_span_layers, LibraryCallRow,
};
pub use model_level::{a1_model_info, ModelInfoRow, ModelInfoTable};
pub use serving::{
    ax4_cache_roofline, ax4_latency_split, ax4_occupancy_throughput, AxAnalysis, LatencySplit,
    OccupancyThroughputRow, ParseAxError,
};
pub use stage::{dominant_stage, stage_of_index, Stage, StageSummary};
pub use workload::{
    ax3_compute_regime, ax3_family_shares, ax3_gemm_roofline, gemm_latency_percent,
    gemm_percent_of, kernel_family, regime_of, ComputeRegime, FamilyShareRow, KernelFamily,
};

/// Capability matrix of Table I: which analyses each tooling class can
/// perform. Used by the `table01_analyses` bench to regenerate the table.
pub fn capability_matrix() -> Vec<(&'static str, &'static str, [bool; 4])> {
    // (analysis, levels required, [end-to-end benchmarking, framework
    // profilers, NVIDIA profilers, XSP])
    vec![
        (
            "A1  Model information table",
            "M",
            [true, false, false, true],
        ),
        (
            "A2  Layer information table",
            "L",
            [false, true, false, true],
        ),
        ("A3  Layer latency", "L", [false, true, false, true]),
        (
            "A4  Layer memory allocation",
            "L",
            [false, true, false, true],
        ),
        (
            "A5  Layer type distribution",
            "L",
            [false, true, false, true],
        ),
        (
            "A6  Layer latency aggregated by type",
            "L",
            [false, true, false, true],
        ),
        (
            "A7  Layer memory allocation aggregated by type",
            "L",
            [false, true, false, true],
        ),
        (
            "A8  GPU kernel information table",
            "G",
            [false, false, true, true],
        ),
        ("A9  GPU kernel roofline", "G", [false, false, true, true]),
        (
            "A10 GPU kernel information aggregated by name",
            "G",
            [false, false, true, true],
        ),
        (
            "A11 GPU kernel information aggregated by layer",
            "L/G",
            [false, false, false, true],
        ),
        (
            "A12 GPU metrics aggregated by layer",
            "L/G",
            [false, false, false, true],
        ),
        (
            "A13 GPU vs Non-GPU latency",
            "L/G",
            [false, false, false, true],
        ),
        ("A14 Layer roofline", "L/G", [false, false, false, true]),
        (
            "A15 GPU kernel information aggregated by model",
            "M/G",
            [false, false, true, true],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_analyses() {
        let m = capability_matrix();
        assert_eq!(m.len(), 15);
        // XSP performs all 15
        assert!(m.iter().all(|(_, _, caps)| caps[3]));
        // A11-A14 are XSP-exclusive
        for row in &m[10..14] {
            assert_eq!(&row.2[..3], &[false, false, false], "{}", row.0);
        }
    }
}
