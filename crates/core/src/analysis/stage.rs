//! Execution-stage analysis (Figure 5 / Table IX): "we divide the model
//! execution into 3 intervals based on the layer index: beginning, middle,
//! and end. We then compute the total latency, flops, and memory accesses
//! within each interval and identify which interval dominates."

/// One of the three execution intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// First third of the layer indices.
    Beginning,
    /// Middle third.
    Middle,
    /// Final third.
    End,
}

impl Stage {
    /// Single-letter code used in Table IX.
    pub fn code(self) -> &'static str {
        match self {
            Stage::Beginning => "B",
            Stage::Middle => "M",
            Stage::End => "E",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Maps a layer index to its stage given the total layer count.
pub fn stage_of_index(index: usize, total: usize) -> Stage {
    if total == 0 {
        return Stage::Beginning;
    }
    let third = total.div_ceil(3);
    if index < third {
        Stage::Beginning
    } else if index < 2 * third {
        Stage::Middle
    } else {
        Stage::End
    }
}

/// Totals per stage and the dominant stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    /// Total over the beginning interval.
    pub beginning: f64,
    /// Total over the middle interval.
    pub middle: f64,
    /// Total over the end interval.
    pub end: f64,
}

impl StageSummary {
    /// The stage with the largest total.
    pub fn dominant(&self) -> Stage {
        if self.beginning >= self.middle && self.beginning >= self.end {
            Stage::Beginning
        } else if self.middle >= self.end {
            Stage::Middle
        } else {
            Stage::End
        }
    }
}

/// Computes the per-stage totals of `(index, value)` series and returns the
/// summary. `total` is the layer count of the model.
pub fn dominant_stage(series: &[(usize, f64)], total: usize) -> StageSummary {
    let mut s = StageSummary {
        beginning: 0.0,
        middle: 0.0,
        end: 0.0,
    };
    for &(idx, v) in series {
        match stage_of_index(idx, total) {
            Stage::Beginning => s.beginning += v,
            Stage::Middle => s.middle += v,
            Stage::End => s.end += v,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirds_partition_the_index_space() {
        let total = 234;
        let mut counts = [0usize; 3];
        for i in 0..total {
            match stage_of_index(i, total) {
                Stage::Beginning => counts[0] += 1,
                Stage::Middle => counts[1] += 1,
                Stage::End => counts[2] += 1,
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), total);
        // balanced within 2
        assert!(counts.iter().all(|&c| (77..=79).contains(&c)), "{counts:?}");
    }

    #[test]
    fn dominant_is_argmax() {
        let series = vec![(0, 1.0), (50, 2.0), (99, 10.0)];
        let s = dominant_stage(&series, 100);
        assert_eq!(s.dominant(), Stage::End);
        assert_eq!(s.beginning, 1.0);
        assert_eq!(s.middle, 2.0);
        assert_eq!(s.end, 10.0);
    }

    #[test]
    fn ties_prefer_earlier_stage() {
        let s = StageSummary {
            beginning: 5.0,
            middle: 5.0,
            end: 5.0,
        };
        assert_eq!(s.dominant(), Stage::Beginning);
    }

    #[test]
    fn codes() {
        assert_eq!(Stage::Beginning.code(), "B");
        assert_eq!(Stage::Middle.code(), "M");
        assert_eq!(Stage::End.code(), "E");
        assert_eq!(Stage::End.to_string(), "E");
    }

    #[test]
    fn empty_model_is_safe() {
        assert_eq!(stage_of_index(0, 0), Stage::Beginning);
        let s = dominant_stage(&[], 0);
        assert_eq!(s.dominant(), Stage::Beginning);
    }
}
