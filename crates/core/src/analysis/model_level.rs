//! A1 — the model information table (§III-D1): latency and throughput
//! across batch sizes, plus the optimal batch size.

use crate::profile::{BatchProfile, Xsp};

/// One row of the A1 table.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfoRow {
    /// Batch size.
    pub batch: usize,
    /// Model (batch) latency, ms.
    pub latency_ms: f64,
    /// Throughput, inputs/s.
    pub throughput: f64,
}

/// The A1 table.
#[derive(Debug, Clone)]
pub struct ModelInfoTable {
    /// Rows in increasing batch order.
    pub rows: Vec<ModelInfoRow>,
    /// Optimal batch size by the 5 %-doubling rule.
    pub optimal_batch: usize,
    /// Maximum throughput observed.
    pub max_throughput: f64,
    /// Latency at batch 1 ("online latency").
    pub online_latency_ms: f64,
}

/// Builds the A1 model-information table from a batch sweep.
pub fn a1_model_info(sweep: &[BatchProfile]) -> ModelInfoTable {
    let rows: Vec<ModelInfoRow> = sweep
        .iter()
        .map(|p| ModelInfoRow {
            batch: p.batch,
            latency_ms: p.profile.model_latency_ms(),
            throughput: p.throughput(),
        })
        .collect();
    let optimal_batch = Xsp::optimal_batch(sweep);
    let max_throughput = rows.iter().map(|r| r.throughput).fold(0.0, f64::max);
    let online_latency_ms = rows
        .iter()
        .find(|r| r.batch == 1)
        .map(|r| r.latency_ms)
        .unwrap_or_else(|| rows.first().map(|r| r.latency_ms).unwrap_or(0.0));
    ModelInfoTable {
        rows,
        optimal_batch,
        max_throughput,
        online_latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Xsp, XspConfig};
    use xsp_framework::FrameworkKind;
    use xsp_gpu::systems;
    use xsp_models::zoo;

    #[test]
    fn table_from_real_sweep() {
        let xsp =
            Xsp::new(XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow).runs(1));
        let entry = zoo::by_name("MobileNet_v1_0.25_128").unwrap();
        let sweep = xsp.batch_sweep(|b| entry.graph(b), &[1, 2, 4, 8, 16, 32, 64]);
        let table = a1_model_info(&sweep);
        assert!(!table.rows.is_empty());
        assert!(table.online_latency_ms > 0.0);
        assert!(table.max_throughput >= table.rows[0].throughput);
        assert!(table.rows.iter().any(|r| r.batch == table.optimal_batch));
        // throughput = batch / latency
        for r in &table.rows {
            let expect = r.batch as f64 / r.latency_ms * 1e3;
            assert!((r.throughput - expect).abs() / expect < 1e-9);
        }
    }
}
