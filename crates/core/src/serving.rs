//! The inference-serving tier: a simulated continuous-batching scheduler
//! over KV-cache decode steps.
//!
//! The paper's pipeline profiles one inference at a time; a serving system
//! instead interleaves many requests through a shared decode loop. This
//! module reproduces that regime deterministically: requests arrive on a
//! seeded [`ArrivalTrace`], a continuous-batching scheduler admits them
//! into a bounded batch, and every scheduler step — a batch-1 prefill of a
//! newly admitted prompt, or one autoregressive decode step of the whole
//! active batch — is costed by profiling the corresponding
//! [`xsp_models::transformer`] graph through the normal leveled pipeline
//! ([`crate::profile::ProfileRequest`]). Step profiles are memoized by
//! `(kind, batch, bucketed attend length)`, so a thousand-step simulation
//! profiles only a handful of distinct graphs.
//!
//! Determinism contract: the scheduler itself is strictly sequential over a
//! virtual clock; all parallelism lives inside the profile calls, which are
//! already byte-deterministic for any worker count. A simulation therefore
//! produces identical [`ServingReport`]s — and identical streamed span
//! traces — under `XSP_THREADS=1` and `XSP_THREADS=4`.
//!
//! Span streaming: with a sink attached ([`simulate_streaming`]), each step
//! clones the spans of its (memoized) profile, re-stamps them with a fresh
//! per-step trace id and the step's virtual start time, and pushes them
//! through an incremental [`CorrelationEngine`] window —
//! `push_batch`/`finalize_run` per step — so the exported trace reads as
//! one continuous serving timeline rather than a pile of overlapping
//! single-inference captures.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::export::ExportSink;
use crate::pipeline::profile_from_correlated;
use crate::profile::{LeveledProfile, ProfileRequest, ProfilingLevel, Xsp};
use xsp_models::transformer::{self, DecodeAttention};
use xsp_trace::{CorrelationEngine, Span, TraceId};

/// One inference request in the arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingRequest {
    /// Request id (unique within a trace, admission-ordered).
    pub id: u32,
    /// Arrival time on the virtual clock, ms.
    pub arrival_ms: f64,
    /// Prompt length in tokens (the prefill cost).
    pub prompt_tokens: usize,
    /// Tokens to generate, including the one the prefill emits.
    pub decode_tokens: usize,
}

/// A deterministic arrival trace: the serving workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Requests sorted by arrival time.
    pub requests: Vec<ServingRequest>,
}

/// splitmix64 — the same tiny deterministic generator the simulated GPU
/// uses for jitter; good enough statistical quality for workload synthesis
/// and trivially reproducible from the seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` from one generator draw.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform usize in `[lo, hi]` (inclusive) from one generator draw.
fn range_usize(state: &mut u64, lo: usize, hi: usize) -> usize {
    assert!(lo <= hi, "empty range");
    lo + (splitmix64(state) % (hi - lo + 1) as u64) as usize
}

impl ArrivalTrace {
    /// Synthesizes a Poisson-like arrival trace: `n` requests with
    /// exponential interarrival gaps at `rate_per_s` requests/second,
    /// prompt and decode lengths drawn uniformly from the given inclusive
    /// ranges. Fully determined by `seed` — the replay property the
    /// determinism tests lean on.
    pub fn synthetic(
        seed: u64,
        n: usize,
        rate_per_s: f64,
        prompt_tokens: (usize, usize),
        decode_tokens: (usize, usize),
    ) -> Self {
        assert!(rate_per_s > 0.0, "arrival rate must be positive");
        assert!(
            prompt_tokens.0 >= 1 && decode_tokens.0 >= 1,
            "degenerate request shape"
        );
        let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
        let mut clock_ms = 0.0f64;
        let mut requests = Vec::with_capacity(n);
        for id in 0..n {
            let u = unit_f64(&mut state);
            clock_ms += -(1.0 - u).ln() / rate_per_s * 1000.0;
            requests.push(ServingRequest {
                id: id as u32,
                arrival_ms: clock_ms,
                prompt_tokens: range_usize(&mut state, prompt_tokens.0, prompt_tokens.1),
                decode_tokens: range_usize(&mut state, decode_tokens.0, decode_tokens.1),
            });
        }
        Self { requests }
    }
}

/// The transformer a serving simulation decodes with — the zoo's
/// transformer tier, keyed the same way the CLI's `--model` flag and the
/// zoo registry key them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingModel {
    /// GPT-2 small with the vocab-wide LM head (zoo id 58).
    Gpt2Small,
    /// BERT-Base incremental scoring (zoo id 56).
    BertBase,
    /// BERT-Large incremental scoring (zoo id 57).
    BertLarge,
}

impl ServingModel {
    /// Display label (matches the zoo entry name).
    pub fn label(self) -> &'static str {
        match self {
            ServingModel::Gpt2Small => "GPT2_Small_256",
            ServingModel::BertBase => "BERT-Base_SQuAD_384",
            ServingModel::BertLarge => "BERT-Large_SQuAD_384",
        }
    }

    /// Maps a zoo model id to the serving tier, when the model has a
    /// decode-step variant.
    pub fn from_zoo_id(id: u32) -> Option<Self> {
        match id {
            56 => Some(ServingModel::BertBase),
            57 => Some(ServingModel::BertLarge),
            58 => Some(ServingModel::Gpt2Small),
            _ => None,
        }
    }

    /// The batch-1 prefill graph for a `prompt` token prompt.
    fn prefill_graph(self, prompt: usize) -> xsp_framework::LayerGraph {
        match self {
            ServingModel::Gpt2Small => transformer::gpt2_small(1, prompt),
            ServingModel::BertBase => transformer::bert_base(1, prompt),
            ServingModel::BertLarge => transformer::bert_large(1, prompt),
        }
    }

    /// One decode step of the whole batch against `cache_len` cached
    /// tokens.
    fn decode_graph(
        self,
        batch: usize,
        cache_len: usize,
        path: DecodeAttention,
    ) -> xsp_framework::LayerGraph {
        match self {
            ServingModel::Gpt2Small => transformer::gpt2_decode_step(batch, cache_len, path),
            ServingModel::BertBase => transformer::bert_base_decode_step(batch, cache_len, path),
            ServingModel::BertLarge => transformer::bert_large_decode_step(batch, cache_len, path),
        }
    }
}

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServingConfig {
    /// Decode batch capacity (active request slots).
    pub max_batch: usize,
    /// Attend-length bucketing granularity: decode steps round the longest
    /// active cache up to a multiple of this, so step profiles memoize
    /// across nearby cache lengths.
    pub cache_bucket: usize,
    /// Profiling level each step graph is evaluated at.
    pub level: ProfilingLevel,
    /// Which decode attention lowering the steps use.
    pub attention: DecodeAttention,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            cache_bucket: 64,
            level: ProfilingLevel::ModelLayerGpu,
            attention: DecodeAttention::Materialized,
        }
    }
}

impl ServingConfig {
    /// Sets the decode batch capacity.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the attend-length bucket granularity.
    pub fn cache_bucket(mut self, bucket: usize) -> Self {
        self.cache_bucket = bucket;
        self
    }

    /// Sets the per-step profiling level.
    pub fn level(mut self, level: ProfilingLevel) -> Self {
        self.level = level;
        self
    }

    /// Sets the decode attention lowering.
    pub fn attention(mut self, attention: DecodeAttention) -> Self {
        self.attention = attention;
        self
    }
}

/// What one scheduler step did.
#[derive(Debug, Clone, PartialEq)]
pub enum StepKind {
    /// Batch-1 prefill of a newly admitted request (emits its first token).
    Prefill {
        /// The admitted request.
        request: u32,
        /// Its prompt length.
        prompt_tokens: usize,
    },
    /// One autoregressive decode step of the active batch.
    Decode {
        /// Active batch size during the step.
        batch: usize,
        /// Bucketed attend length the step's kernels saw.
        attend_tokens: usize,
        /// Requests that emitted their last token this step.
        completed: Vec<u32>,
    },
}

/// One scheduler step on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Step index (also the streamed trace id, offset by one).
    pub index: usize,
    /// Step start on the virtual clock, ms.
    pub start_ms: f64,
    /// Step latency — the profiled model latency of the step graph, ms.
    pub latency_ms: f64,
    /// What the step did.
    pub kind: StepKind,
}

/// Per-request lifecycle timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Request id.
    pub id: u32,
    /// Arrival on the virtual clock, ms.
    pub arrival_ms: f64,
    /// When the scheduler admitted it (prefill start), ms.
    pub admitted_ms: f64,
    /// When its first token was emitted (prefill end), ms.
    pub first_token_ms: f64,
    /// When its last token was emitted, ms.
    pub completed_ms: f64,
    /// Prompt length, tokens.
    pub prompt_tokens: usize,
    /// Generated length, tokens.
    pub decode_tokens: usize,
}

impl RequestRecord {
    /// Queue wait: arrival → admission, ms.
    pub fn queue_wait_ms(&self) -> f64 {
        self.admitted_ms - self.arrival_ms
    }

    /// Time to first token: arrival → first token, ms.
    pub fn ttft_ms(&self) -> f64 {
        self.first_token_ms - self.arrival_ms
    }

    /// Time per output token after the first, ms (0 for single-token
    /// generations).
    pub fn tpot_ms(&self) -> f64 {
        if self.decode_tokens <= 1 {
            0.0
        } else {
            (self.completed_ms - self.first_token_ms) / (self.decode_tokens - 1) as f64
        }
    }
}

/// Everything a serving simulation produced.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// The model that was served.
    pub model: &'static str,
    /// Decode batch capacity the scheduler ran with.
    pub max_batch: usize,
    /// Every scheduler step, in order.
    pub steps: Vec<StepRecord>,
    /// Every request's lifecycle, in id order.
    pub requests: Vec<RequestRecord>,
    /// End of the last step on the virtual clock, ms.
    pub makespan_ms: f64,
    /// Total tokens emitted (prefill first tokens + decode tokens).
    pub tokens_emitted: usize,
    /// The profile of the most latency-weighted decode step shape — the
    /// representative input for [`crate::analysis::ax4_cache_roofline`].
    /// Shared with the scheduler's step memo (an `Arc` bump, not a
    /// span-vector deep copy). `None` when the trace never reached a
    /// decode step.
    pub representative_decode: Option<Arc<LeveledProfile>>,
}

impl ServingReport {
    /// Aggregate generation throughput over the makespan, tokens/second.
    pub fn tokens_per_s(&self) -> f64 {
        if self.makespan_ms > 0.0 {
            self.tokens_emitted as f64 / (self.makespan_ms / 1000.0)
        } else {
            0.0
        }
    }

    /// Latency-weighted mean decode-batch occupancy, percent of
    /// `max_batch`.
    pub fn mean_occupancy_percent(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for s in &self.steps {
            if let StepKind::Decode { batch, .. } = &s.kind {
                weighted += *batch as f64 * s.latency_ms;
                total += s.latency_ms;
            }
        }
        if total > 0.0 {
            100.0 * weighted / total / self.max_batch as f64
        } else {
            0.0
        }
    }

    /// Total time spent in prefill steps, ms.
    pub fn prefill_ms(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Prefill { .. }))
            .map(|s| s.latency_ms)
            .sum()
    }

    /// Total time spent in decode steps, ms.
    pub fn decode_ms(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Decode { .. }))
            .map(|s| s.latency_ms)
            .sum()
    }

    /// Idle time: makespan not covered by any step (the GPU waiting for
    /// arrivals), ms.
    pub fn idle_ms(&self) -> f64 {
        (self.makespan_ms - self.prefill_ms() - self.decode_ms()).max(0.0)
    }

    /// Mean time to first token across requests, ms.
    pub fn mean_ttft_ms(&self) -> f64 {
        mean(self.requests.iter().map(RequestRecord::ttft_ms))
    }

    /// Mean time per output token across requests, ms.
    pub fn mean_tpot_ms(&self) -> f64 {
        mean(self.requests.iter().map(RequestRecord::tpot_ms))
    }

    /// Mean queue wait across requests, ms.
    pub fn mean_queue_wait_ms(&self) -> f64 {
        mean(self.requests.iter().map(RequestRecord::queue_wait_ms))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n > 0 {
        sum / n as f64
    } else {
        0.0
    }
}

/// Memoization key of one step graph shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum StepShape {
    Prefill { prompt: usize },
    Decode { batch: usize, attend: usize },
}

/// An admitted, not-yet-finished request.
struct Active {
    id: u32,
    cache_len: usize,
    remaining: usize,
}

/// Runs the continuous-batching simulation without span streaming.
pub fn simulate(
    xsp: &Xsp,
    model: ServingModel,
    trace: &ArrivalTrace,
    cfg: &ServingConfig,
) -> ServingReport {
    simulate_streaming(xsp, model, trace, cfg, None)
}

/// Runs the continuous-batching simulation, optionally streaming each
/// step's re-stamped spans through an incremental correlation window into
/// `sink` (one finalized run per step).
pub fn simulate_streaming(
    xsp: &Xsp,
    model: ServingModel,
    trace: &ArrivalTrace,
    cfg: &ServingConfig,
    sink: Option<&ExportSink>,
) -> ServingReport {
    assert!(cfg.max_batch >= 1, "serving needs at least one batch slot");
    assert!(cfg.cache_bucket >= 1, "cache bucket must be positive");
    for r in &trace.requests {
        assert!(
            r.prompt_tokens >= 1 && r.decode_tokens >= 1,
            "request {} has a degenerate shape",
            r.id
        );
    }
    let mut pending: Vec<&ServingRequest> = trace.requests.iter().collect();
    pending.sort_by(|a, b| {
        a.arrival_ms
            .partial_cmp(&b.arrival_ms)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    let mut pending = pending.into_iter().peekable();

    let mut memo: BTreeMap<StepShape, Arc<LeveledProfile>> = BTreeMap::new();
    let mut decode_weight: BTreeMap<StepShape, f64> = BTreeMap::new();
    let mut engine = sink.map(|_| CorrelationEngine::new());

    let mut active: Vec<Active> = Vec::new();
    let mut clock_ms = 0.0f64;
    let mut steps: Vec<StepRecord> = Vec::new();
    let mut requests: Vec<RequestRecord> = Vec::new();
    let mut tokens = 0usize;

    loop {
        // Admission first: a free slot and an arrived request always win
        // over another decode step (prefill-priority continuous batching).
        let admit = active.len() < cfg.max_batch
            && pending.peek().is_some_and(|r| r.arrival_ms <= clock_ms);
        let (shape, kind) = if admit {
            let r = pending.next().unwrap();
            (
                StepShape::Prefill {
                    prompt: r.prompt_tokens,
                },
                StepKind::Prefill {
                    request: r.id,
                    prompt_tokens: r.prompt_tokens,
                },
            )
        } else if !active.is_empty() {
            let longest = active.iter().map(|a| a.cache_len + 1).max().unwrap();
            let attend = longest.div_ceil(cfg.cache_bucket) * cfg.cache_bucket;
            (
                StepShape::Decode {
                    batch: active.len(),
                    attend,
                },
                StepKind::Decode {
                    batch: active.len(),
                    attend_tokens: attend,
                    completed: Vec::new(),
                },
            )
        } else if let Some(r) = pending.peek() {
            // Nothing runnable: jump the clock to the next arrival.
            clock_ms = r.arrival_ms;
            continue;
        } else {
            break;
        };

        let profile = memo.entry(shape).or_insert_with(|| {
            let graph = match shape {
                StepShape::Prefill { prompt } => model.prefill_graph(prompt),
                StepShape::Decode { batch, attend } => {
                    model.decode_graph(batch, attend, cfg.attention)
                }
            };
            // `run_shared` keeps the memoized profile behind an `Arc` —
            // and, when the config opts into the process-wide cache, lets
            // repeat simulations skip profiling the shape entirely.
            xsp.run_shared(ProfileRequest::new(&graph).level(cfg.level))
        });
        let latency_ms = profile.model_latency_ms();
        let start_ms = clock_ms;
        let end_ms = clock_ms + latency_ms;
        let index = steps.len();

        if let (Some(engine), Some(sink)) = (engine.as_mut(), sink) {
            stream_step(engine, sink, profile, cfg.level, index, start_ms);
        }

        // Apply the step's effects to the batch.
        let kind = match kind {
            StepKind::Prefill {
                request,
                prompt_tokens,
            } => {
                let r = trace
                    .requests
                    .iter()
                    .find(|r| r.id == request)
                    .expect("admitted request exists");
                tokens += 1; // prefill emits the first token
                let remaining = r.decode_tokens - 1;
                let mut record = RequestRecord {
                    id: r.id,
                    arrival_ms: r.arrival_ms,
                    admitted_ms: start_ms,
                    first_token_ms: end_ms,
                    completed_ms: end_ms,
                    prompt_tokens: r.prompt_tokens,
                    decode_tokens: r.decode_tokens,
                };
                if remaining > 0 {
                    record.completed_ms = f64::NAN; // patched at completion
                    active.push(Active {
                        id: r.id,
                        cache_len: r.prompt_tokens,
                        remaining,
                    });
                }
                requests.push(record);
                StepKind::Prefill {
                    request,
                    prompt_tokens,
                }
            }
            StepKind::Decode {
                batch,
                attend_tokens,
                ..
            } => {
                decode_weight
                    .entry(shape)
                    .and_modify(|w| *w += latency_ms)
                    .or_insert(latency_ms);
                let mut completed = Vec::new();
                for a in &mut active {
                    a.cache_len += 1;
                    a.remaining -= 1;
                    tokens += 1;
                    if a.remaining == 0 {
                        completed.push(a.id);
                        let rec = requests
                            .iter_mut()
                            .find(|r| r.id == a.id)
                            .expect("active request has a record");
                        rec.completed_ms = end_ms;
                    }
                }
                active.retain(|a| a.remaining > 0);
                StepKind::Decode {
                    batch,
                    attend_tokens,
                    completed,
                }
            }
        };

        steps.push(StepRecord {
            index,
            start_ms,
            latency_ms,
            kind,
        });
        clock_ms = end_ms;
    }

    // The most latency-weighted decode shape represents the serving
    // workload on the roofline.
    let representative_decode = decode_weight
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(b.0)))
        .and_then(|(shape, _)| memo.get(shape).cloned());

    requests.sort_by_key(|r| r.id);
    ServingReport {
        model: model.label(),
        max_batch: cfg.max_batch,
        steps,
        requests,
        makespan_ms: clock_ms,
        tokens_emitted: tokens,
        representative_decode,
    }
}

/// Streams one step's spans: clone the deepest plain run of the step's
/// memoized profile, re-stamp every span with the step's trace id and
/// virtual start time, and run it through the incremental correlation
/// window so the sink receives one finalized run per step.
fn stream_step(
    engine: &mut CorrelationEngine,
    sink: &ExportSink,
    profile: &LeveledProfile,
    level: ProfilingLevel,
    step_index: usize,
    start_ms: f64,
) {
    let run = match level {
        ProfilingLevel::Model => profile.m_runs.first(),
        ProfilingLevel::ModelLayer => profile.ml_runs.first(),
        ProfilingLevel::ModelLayerGpu => profile.mlg_runs.first(),
    };
    let Some(run) = run else { return };
    let spans: Vec<&Span> = run.trace.iter_spans().collect();
    let base_ns = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let offset_ns = (start_ms * 1_000_000.0).round() as u64;
    let trace_id = TraceId(step_index as u64 + 1);
    let restamped: Vec<Span> = spans
        .into_iter()
        .map(|s| {
            let mut s = s.clone();
            s.trace_id = trace_id;
            s.start_ns = s.start_ns - base_ns + offset_ns;
            s.end_ns = s.end_ns - base_ns + offset_ns;
            s
        })
        .collect();
    engine.push_batch(restamped);
    if let Some(correlated) = engine.finalize_run(trace_id) {
        sink.write_runs(&[profile_from_correlated(correlated, level)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::XspConfig;
    use crate::scheduler::Parallelism;
    use xsp_framework::FrameworkKind;
    use xsp_gpu::systems;

    fn xsp(parallelism: Parallelism) -> Xsp {
        Xsp::new(
            XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow)
                .runs(1)
                .parallelism(parallelism),
        )
    }

    fn small_trace() -> ArrivalTrace {
        ArrivalTrace::synthetic(7, 6, 40.0, (16, 48), (4, 12))
    }

    fn quick_cfg() -> ServingConfig {
        ServingConfig::default()
            .max_batch(4)
            .level(ProfilingLevel::Model)
    }

    #[test]
    fn synthetic_trace_is_seed_deterministic() {
        let a = ArrivalTrace::synthetic(42, 20, 100.0, (8, 64), (1, 32));
        let b = ArrivalTrace::synthetic(42, 20, 100.0, (8, 64), (1, 32));
        assert_eq!(a, b);
        let c = ArrivalTrace::synthetic(43, 20, 100.0, (8, 64), (1, 32));
        assert_ne!(a, c);
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(a
            .requests
            .iter()
            .all(|r| (8..=64).contains(&r.prompt_tokens) && (1..=32).contains(&r.decode_tokens)));
    }

    #[test]
    fn every_request_completes_and_tokens_add_up() {
        let trace = small_trace();
        let report = simulate(
            &xsp(Parallelism::Serial),
            ServingModel::Gpt2Small,
            &trace,
            &quick_cfg(),
        );
        assert_eq!(report.requests.len(), trace.requests.len());
        let expected: usize = trace.requests.iter().map(|r| r.decode_tokens).sum();
        assert_eq!(report.tokens_emitted, expected);
        for r in &report.requests {
            assert!(r.arrival_ms <= r.admitted_ms);
            assert!(r.admitted_ms < r.first_token_ms);
            assert!(r.first_token_ms <= r.completed_ms);
            assert!(!r.completed_ms.is_nan());
        }
        assert!(report.tokens_per_s() > 0.0);
        assert!(report.makespan_ms > 0.0);
    }

    #[test]
    fn occupancy_and_splits_are_consistent() {
        let report = simulate(
            &xsp(Parallelism::Serial),
            ServingModel::Gpt2Small,
            &small_trace(),
            &quick_cfg(),
        );
        let occ = report.mean_occupancy_percent();
        assert!(occ > 0.0 && occ <= 100.0, "occupancy {occ}");
        let covered = report.prefill_ms() + report.decode_ms() + report.idle_ms();
        assert!((covered - report.makespan_ms).abs() < 1e-6);
        assert!(report.mean_ttft_ms() > 0.0);
    }

    #[test]
    fn scheduler_is_thread_count_invariant() {
        let trace = small_trace();
        let cfg = quick_cfg();
        let serial = simulate(
            &xsp(Parallelism::Serial),
            ServingModel::Gpt2Small,
            &trace,
            &cfg,
        );
        let fixed = simulate(
            &xsp(Parallelism::Fixed(4)),
            ServingModel::Gpt2Small,
            &trace,
            &cfg,
        );
        assert_eq!(serial.steps, fixed.steps);
        assert_eq!(serial.requests, fixed.requests);
        assert_eq!(serial.tokens_emitted, fixed.tokens_emitted);
    }

    #[test]
    fn decode_steps_dominate_and_memoization_bounds_profiles() {
        let report = simulate(
            &xsp(Parallelism::Serial),
            ServingModel::Gpt2Small,
            &small_trace(),
            &quick_cfg(),
        );
        let decodes = report
            .steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Decode { .. }))
            .count();
        let prefills = report.steps.len() - decodes;
        assert_eq!(prefills, report.requests.len());
        assert!(
            decodes > prefills,
            "{decodes} decodes vs {prefills} prefills"
        );
    }

    #[test]
    fn streamed_spans_are_byte_identical_across_thread_counts() {
        let trace = small_trace();
        let cfg = quick_cfg().level(ProfilingLevel::ModelLayer);
        let capture = |parallelism| {
            let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
            impl std::io::Write for Shared {
                fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(b);
                    Ok(b.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            let sink = ExportSink::new(Shared(buf.clone()));
            simulate_streaming(
                &xsp(parallelism),
                ServingModel::Gpt2Small,
                &trace,
                &cfg,
                Some(&sink),
            );
            sink.finish().unwrap();
            let bytes = buf.lock().unwrap().clone();
            bytes
        };
        let serial = capture(Parallelism::Serial);
        let fixed = capture(Parallelism::Fixed(4));
        assert!(!serial.is_empty());
        assert_eq!(serial, fixed);
        // per-step trace ids and virtual-time offsets made it into the
        // stream: the first span of step 2 starts after step 1's offset
        let text = String::from_utf8(serial).unwrap();
        assert!(
            text.contains("\"trace_id\":2"),
            "restamped trace ids missing"
        );
    }
}
