//! # xsp-core — across-stack profiling and analysis of ML models on GPUs
//!
//! This crate is the reproduction of the XSP system itself (Li & Dakkak et
//! al., IPDPS 2020): a profiling *design* that aggregates and correlates
//! profile data from the model, layer, and GPU-kernel levels of the HW/SW
//! stack into one hierarchical timeline, copes with profiling overhead via
//! *leveled experimentation*, and feeds an automated pipeline of **15
//! analyses** (Table I of the paper).
//!
//! ## Architecture
//!
//! * [`api`] — the two-line tracing API (`start_span`/`SpanHandle::finish`)
//!   users put around code regions of interest (§III-B-1).
//! * [`pipeline`] — one evaluation run: wire a simulated GPU
//!   ([`xsp_gpu`]), the CUPTI adapter ([`xsp_cupti`]), and a framework
//!   session ([`xsp_framework`]) to a tracing server, run the inference
//!   pipeline, and correlate the resulting spans (interval-tree parent
//!   reconstruction, async launch/execution merging, optional serialized
//!   re-run for ambiguous parents).
//! * [`profile`] — leveled experimentation (§III-C): orchestrates runs at
//!   profiling levels M, M/L, M/L/G (+metrics), keeps the accurate
//!   measurements from each level, and quantifies per-level overhead.
//! * [`scheduler`] — the parallel evaluation engine: independent
//!   `(run, level, batch)` points fan out to a scoped worker pool and merge
//!   deterministically in submission order ([`scheduler::Parallelism`]
//!   picks the worker count; `XSP_THREADS` overrides it).
//! * [`export`] — streaming profile export (`spans`/`chrome`/`folded`
//!   over any `io::Write`, the `xsp export` subcommand's engine) and the
//!   [`export::ExportSink`] that lets sweeps export as they run.
//! * [`analysis`] — the 15 automated analyses A1–A15 (§III-D).
//! * [`report`] — fixed-width table/series rendering used by the bench
//!   harness to print paper-style tables and figures.
//!
//! ## Quickstart
//!
//! ```
//! use xsp_core::profile::{ProfileRequest, Xsp, XspConfig};
//! use xsp_framework::FrameworkKind;
//! use xsp_gpu::systems;
//!
//! let cfg = XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow);
//! let xsp = Xsp::new(cfg);
//! let graph = xsp_models::zoo::by_name("MLPerf_ResNet50_v1.5").unwrap().graph(4);
//! let profile = xsp.run(ProfileRequest::new(&graph));
//! assert!(profile.model_latency_ms() > 0.0);
//! let a2 = xsp_core::analysis::a2_layer_info(&profile);
//! assert!(!a2.is_empty());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod cache;
pub mod export;
pub mod pipeline;
pub mod profile;
pub mod report;
pub mod roofline;
pub mod scheduler;
pub mod serving;

pub use cache::{CacheStats, Fnv128, GraphFingerprint, ProfileCache, ShardedCache};
pub use export::{export_profile, ExportFormat, ExportSink, ParseFormatError};
pub use pipeline::{KernelProfile, LayerProfile, ModelPhases, RunProfile};
pub use profile::{
    BatchProfile, LeveledProfile, ParseLevelError, ProfileMode, ProfileRequest, ProfilingLevel,
    Xsp, XspConfig,
};
pub use roofline::{classify, RooflinePoint};
pub use scheduler::{parmap, Parallelism};
pub use serving::{
    simulate, simulate_streaming, ArrivalTrace, RequestRecord, ServingConfig, ServingModel,
    ServingReport, ServingRequest, StepKind, StepRecord,
};
