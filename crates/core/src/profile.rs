//! Leveled experimentation (§III-C) and multi-run orchestration (§III-D).
//!
//! "Profilers at a specific stack level accurately capture the events within
//! that level. ... the profiling overhead can be controlled by picking the
//! profiling level. For an event at level n, the profiling overhead
//! introduced at level n+1 can be quantified by subtracting the latency of
//! the event when profilers up to level n are enabled from the latency when
//! profilers up to level n+1 are enabled."
//!
//! [`Xsp::leveled`] therefore runs the model at M, M/L, and M/L/G and keeps,
//! for every event, the measurement from the *shallowest* level that
//! observes it: model latency from M runs, layer latencies from M/L runs,
//! kernel latencies from M/L/G runs. The per-level overhead is what
//! [`LeveledProfile::overhead_report`] quantifies (Figure 2).

use crate::pipeline::{run_once, run_once_with_metrics, KernelProfile, LayerProfile, RunProfile};
use xsp_cupti::MetricKind;
use xsp_framework::{FrameworkKind, LayerGraph};
use xsp_gpu::System;
use xsp_trace::stats::trimmed_mean;

/// Which profilers are enabled for a run (paper notation M, M/L, M/L/G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfilingLevel {
    /// Model-level timers only (M).
    Model,
    /// Model + framework layer profiler (M/L).
    ModelLayer,
    /// Model + layer + GPU kernel profiling (M/L/G).
    ModelLayerGpu,
}

impl ProfilingLevel {
    /// Whether the framework layer profiler is on.
    pub fn includes_layers(self) -> bool {
        matches!(
            self,
            ProfilingLevel::ModelLayer | ProfilingLevel::ModelLayerGpu
        )
    }

    /// Whether CUPTI-level profiling is on.
    pub fn includes_gpu(self) -> bool {
        matches!(self, ProfilingLevel::ModelLayerGpu)
    }

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            ProfilingLevel::Model => "M",
            ProfilingLevel::ModelLayer => "M/L",
            ProfilingLevel::ModelLayerGpu => "M/L/G",
        }
    }
}

/// XSP configuration: target system, framework, and measurement policy.
#[derive(Debug, Clone)]
pub struct XspConfig {
    /// Evaluation system (Table VII).
    pub system: System,
    /// Framework personality.
    pub framework: FrameworkKind,
    /// Evaluations per level ("the pipeline takes traces from a user-defined
    /// number of evaluations").
    pub runs: usize,
    /// Trim fraction for the trimmed-mean summary.
    pub trim: f64,
    /// Base jitter seed.
    pub seed: u64,
    /// Jitter amplitude.
    pub jitter: f64,
    /// GPU metrics to collect in M/L/G runs.
    pub metrics: Vec<MetricKind>,
    /// Re-run serialized when parent reconstruction is ambiguous.
    pub serialize_on_ambiguity: bool,
    /// §III-E extension: capture library-level (cuDNN/cuBLAS API) spans
    /// between the layer and kernel levels in M/L/G runs.
    pub library_level: bool,
    /// §III-E extension: capture host/CPU dispatch spans alongside the GPU
    /// activity in M/L/G runs.
    pub host_level: bool,
}

impl XspConfig {
    /// Default policy: 3 evaluations, 10 % trim, all four GPU metrics.
    pub fn new(system: System, framework: FrameworkKind) -> Self {
        Self {
            system,
            framework,
            runs: 3,
            trim: 0.1,
            seed: 0x5E_ED,
            jitter: 0.012,
            metrics: MetricKind::ALL.to_vec(),
            serialize_on_ambiguity: true,
            library_level: false,
            host_level: false,
        }
    }

    /// Builder: enable the library-level tracer (§III-E extension).
    pub fn library_level(mut self, on: bool) -> Self {
        self.library_level = on;
        self
    }

    /// Builder: enable the host/CPU tracer (§III-E extension).
    pub fn host_level(mut self, on: bool) -> Self {
        self.host_level = on;
        self
    }

    /// Builder: number of evaluations per level.
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs >= 1, "at least one evaluation");
        self.runs = runs;
        self
    }

    /// Builder: metric selection.
    pub fn metrics(mut self, metrics: Vec<MetricKind>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builder: jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The merged result of leveled experimentation on one (graph, system,
/// framework) triple.
#[derive(Debug, Clone)]
pub struct LeveledProfile {
    /// M-level runs.
    pub m_runs: Vec<RunProfile>,
    /// M/L-level runs.
    pub ml_runs: Vec<RunProfile>,
    /// M/L/G-level runs (kernel tracing without metric collection).
    pub mlg_runs: Vec<RunProfile>,
    /// M/L/G runs with hardware-metric collection (kernel replay) enabled;
    /// supply the metric tags merged into [`LeveledProfile::kernels`].
    pub metric_runs: Vec<RunProfile>,
    /// Trim fraction used for summaries.
    pub trim: f64,
    /// Batch size of the profiled graph.
    pub batch: usize,
}

impl LeveledProfile {
    /// Model prediction latency, ms — the *accurate* value, from M runs.
    pub fn model_latency_ms(&self) -> f64 {
        let samples: Vec<f64> = self.m_runs.iter().map(|r| r.phases.predict_ms).collect();
        trimmed_mean(&samples, self.trim).unwrap_or(0.0)
    }

    /// Throughput, inputs/second, at this batch size.
    pub fn throughput(&self) -> f64 {
        let ms = self.model_latency_ms();
        if ms <= 0.0 {
            0.0
        } else {
            self.batch as f64 / ms * 1e3
        }
    }

    /// Per-layer profiles with latencies trimmed-averaged across M/L runs
    /// (the accurate layer-level values).
    pub fn layers(&self) -> Vec<LayerProfile> {
        merge_layers(&self.ml_runs, self.trim)
    }

    /// Per-kernel profiles: latencies merged across the plain M/L/G runs,
    /// metric values (flops, DRAM traffic, occupancy) grafted from the
    /// metric-collection runs — the per-level accuracy rule of §III-C.
    pub fn kernels(&self) -> Vec<KernelProfile> {
        let mut kernels = if self.mlg_runs.is_empty() {
            merge_kernels(&self.metric_runs, self.trim)
        } else {
            merge_kernels(&self.mlg_runs, self.trim)
        };
        if let Some(metric_run) = self.metric_runs.first() {
            for k in &mut kernels {
                if let Some(m) = metric_run.kernels.get(k.order) {
                    if m.name == k.name {
                        k.flops = m.flops;
                        k.dram_read = m.dram_read;
                        k.dram_write = m.dram_write;
                        k.occupancy = m.occupancy;
                        if k.layer_index.is_none() {
                            k.layer_index = m.layer_index;
                        }
                    }
                }
            }
        }
        kernels
    }

    /// Prediction latency of a metric-collection run — the ">100x" slowdown
    /// regime of §III-C, useful for demonstrating why leveled
    /// experimentation exists.
    pub fn metric_run_predict_ms(&self) -> f64 {
        let samples: Vec<f64> = self
            .metric_runs
            .iter()
            .map(|r| r.phases.predict_ms)
            .collect();
        trimmed_mean(&samples, self.trim).unwrap_or(0.0)
    }

    /// Layer profiles as observed in the M/L/G runs — needed when relating
    /// layers to kernels within the same run (A11-A14).
    pub fn layers_at_gpu_level(&self) -> Vec<LayerProfile> {
        if self.mlg_runs.is_empty() {
            merge_layers(&self.metric_runs, self.trim)
        } else {
            merge_layers(&self.mlg_runs, self.trim)
        }
    }

    /// Model prediction latency as observed at a given level (includes that
    /// level's profiling overhead) — the input to Figure 2.
    pub fn predict_ms_at(&self, level: ProfilingLevel) -> f64 {
        let runs = match level {
            ProfilingLevel::Model => &self.m_runs,
            ProfilingLevel::ModelLayer => &self.ml_runs,
            ProfilingLevel::ModelLayerGpu => &self.mlg_runs,
        };
        let samples: Vec<f64> = runs.iter().map(|r| r.phases.predict_ms).collect();
        trimmed_mean(&samples, self.trim).unwrap_or(0.0)
    }

    /// The leveled-experimentation overhead report (Figure 2): prediction
    /// latency observed at each level and the incremental overhead.
    pub fn overhead_report(&self) -> OverheadReport {
        let m = self.predict_ms_at(ProfilingLevel::Model);
        let ml = self.predict_ms_at(ProfilingLevel::ModelLayer);
        let mlg = self.predict_ms_at(ProfilingLevel::ModelLayerGpu);
        OverheadReport {
            model_ms: m,
            model_layer_ms: ml,
            model_layer_gpu_ms: mlg,
            layer_overhead_ms: ml - m,
            gpu_overhead_ms: mlg - ml,
        }
    }

    /// Total GPU kernel latency, ms (from M/L/G runs).
    pub fn kernel_latency_ms(&self) -> f64 {
        self.kernels().iter().map(|k| k.latency_ms).sum()
    }

    /// GPU latency percentage: kernel time over accurate model latency
    /// (Table IX "GPU latency percentage").
    pub fn gpu_latency_percent(&self) -> f64 {
        100.0 * self.kernel_latency_ms() / self.model_latency_ms().max(f64::EPSILON)
    }
}

fn merge_layers(runs: &[RunProfile], trim: f64) -> Vec<LayerProfile> {
    let Some(first) = runs.first() else {
        return Vec::new();
    };
    first
        .layers
        .iter()
        .map(|proto| {
            let samples: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.layers.get(proto.index))
                .map(|l| l.latency_ms)
                .collect();
            let mut merged = proto.clone();
            merged.latency_ms = trimmed_mean(&samples, trim).unwrap_or(proto.latency_ms);
            merged
        })
        .collect()
}

fn merge_kernels(runs: &[RunProfile], trim: f64) -> Vec<KernelProfile> {
    let Some(first) = runs.first() else {
        return Vec::new();
    };
    first
        .kernels
        .iter()
        .map(|proto| {
            let samples: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.kernels.get(proto.order))
                .filter(|k| k.name == proto.name)
                .map(|k| k.latency_ms)
                .collect();
            let mut merged = proto.clone();
            merged.latency_ms = trimmed_mean(&samples, trim).unwrap_or(proto.latency_ms);
            merged
        })
        .collect()
}

/// Figure 2's numbers: per-level prediction latency and incremental
/// overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Accurate model latency (M).
    pub model_ms: f64,
    /// Latency with the layer profiler on (M/L).
    pub model_layer_ms: f64,
    /// Latency with layer + GPU profiling on (M/L/G).
    pub model_layer_gpu_ms: f64,
    /// Overhead the layer profiler introduced.
    pub layer_overhead_ms: f64,
    /// Additional overhead GPU profiling introduced.
    pub gpu_overhead_ms: f64,
}

/// A point in a batch-size sweep.
#[derive(Debug, Clone)]
pub struct BatchProfile {
    /// Batch size.
    pub batch: usize,
    /// The leveled profile at this batch.
    pub profile: LeveledProfile,
}

impl BatchProfile {
    /// Throughput at this batch.
    pub fn throughput(&self) -> f64 {
        self.profile.throughput()
    }
}

/// The XSP profiler front-end.
pub struct Xsp {
    cfg: XspConfig,
}

impl Xsp {
    /// Creates a profiler with the given configuration.
    pub fn new(cfg: XspConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &XspConfig {
        &self.cfg
    }

    /// Runs the full leveled experimentation on one graph: `runs`
    /// evaluations at each of M, M/L, M/L/G.
    pub fn leveled(&self, graph: &LayerGraph) -> LeveledProfile {
        let runs = self.cfg.runs;
        let run_at = |level: ProfilingLevel, base: u64| -> Vec<RunProfile> {
            (0..runs)
                .map(|i| run_once(&self.cfg, graph, level, base + i as u64))
                .collect()
        };
        let metric_runs = (0..runs)
            .map(|i| {
                run_once_with_metrics(
                    &self.cfg,
                    graph,
                    ProfilingLevel::ModelLayerGpu,
                    3000 + i as u64,
                    true,
                )
            })
            .collect();
        LeveledProfile {
            m_runs: run_at(ProfilingLevel::Model, 0),
            ml_runs: run_at(ProfilingLevel::ModelLayer, 1000),
            mlg_runs: run_at(ProfilingLevel::ModelLayerGpu, 2000),
            metric_runs,
            trim: self.cfg.trim,
            batch: graph.batch(),
        }
    }

    /// Model-level only (cheap; used by batch sweeps).
    pub fn model_only(&self, graph: &LayerGraph) -> LeveledProfile {
        let runs = self.cfg.runs;
        LeveledProfile {
            m_runs: (0..runs)
                .map(|i| run_once(&self.cfg, graph, ProfilingLevel::Model, i as u64))
                .collect(),
            ml_runs: Vec::new(),
            mlg_runs: Vec::new(),
            metric_runs: Vec::new(),
            trim: self.cfg.trim,
            batch: graph.batch(),
        }
    }

    /// Model + GPU-level only profile (A15 across batch sizes needs kernels
    /// but not layers).
    pub fn with_gpu(&self, graph: &LayerGraph) -> LeveledProfile {
        let runs = self.cfg.runs;
        LeveledProfile {
            m_runs: (0..runs)
                .map(|i| run_once(&self.cfg, graph, ProfilingLevel::Model, i as u64))
                .collect(),
            ml_runs: Vec::new(),
            mlg_runs: Vec::new(),
            metric_runs: (0..runs)
                .map(|i| {
                    run_once_with_metrics(
                        &self.cfg,
                        graph,
                        ProfilingLevel::ModelLayerGpu,
                        3000 + i as u64,
                        true,
                    )
                })
                .collect(),
            trim: self.cfg.trim,
            batch: graph.batch(),
        }
    }

    /// Sweeps batch sizes (model-level profiling only), stopping early once
    /// throughput stops improving for two consecutive doublings.
    pub fn batch_sweep(
        &self,
        build: impl Fn(usize) -> LayerGraph,
        batches: &[usize],
    ) -> Vec<BatchProfile> {
        let mut out = Vec::new();
        let mut stale = 0usize;
        let mut best = 0.0f64;
        for &batch in batches {
            let graph = build(batch);
            let profile = self.model_only(&graph);
            let tp = profile.throughput();
            out.push(BatchProfile { batch, profile });
            if tp > best * 1.02 {
                best = best.max(tp);
                stale = 0;
            } else {
                stale += 1;
                if stale >= 2 {
                    break;
                }
            }
        }
        out
    }

    /// The paper's optimal-batch-size rule (§III-D1): "the batch size where
    /// doubling it does not increase the model's throughput by more than
    /// 5%".
    pub fn optimal_batch(sweep: &[BatchProfile]) -> usize {
        if sweep.is_empty() {
            return 1;
        }
        for w in sweep.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if b.batch == a.batch * 2 && b.throughput() <= a.throughput() * 1.05 {
                return a.batch;
            }
        }
        sweep
            .iter()
            .max_by(|a, b| a.throughput().partial_cmp(&b.throughput()).unwrap())
            .map(|p| p.batch)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_gpu::systems;
    use xsp_models::zoo;

    fn xsp() -> Xsp {
        Xsp::new(XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow).runs(2))
    }

    fn tiny(batch: usize) -> LayerGraph {
        zoo::by_name("MobileNet_v1_0.25_128").unwrap().graph(batch)
    }

    #[test]
    fn leveled_profile_is_complete() {
        let p = xsp().leveled(&tiny(2));
        assert_eq!(p.m_runs.len(), 2);
        assert!(!p.layers().is_empty());
        assert!(!p.kernels().is_empty());
        assert!(p.model_latency_ms() > 0.0);
        assert!(p.throughput() > 0.0);
    }

    #[test]
    fn overheads_are_positive_and_ordered() {
        let p = xsp().leveled(&tiny(2));
        let o = p.overhead_report();
        assert!(
            o.model_ms < o.model_layer_ms,
            "layer profiling must add overhead: {o:?}"
        );
        assert!(
            o.model_layer_ms < o.model_layer_gpu_ms,
            "gpu profiling must add more overhead: {o:?}"
        );
        assert!(o.layer_overhead_ms > 0.0);
        assert!(o.gpu_overhead_ms > 0.0);
    }

    #[test]
    fn gpu_latency_percent_is_sane() {
        let p = xsp().leveled(&tiny(2));
        let pct = p.gpu_latency_percent();
        assert!(pct > 5.0 && pct < 100.0, "GPU latency {pct}%");
    }

    #[test]
    fn optimal_batch_rule_applies_5_percent_doubling() {
        // synthetic sweep: throughput saturates at batch 8
        let mk = |batch: usize, tp_ms: f64| {
            let mut p = xsp().model_only(&tiny(1));
            // overwrite the measured latency by fabricating batch/latency
            p.batch = batch;
            for r in &mut p.m_runs {
                r.phases.predict_ms = batch as f64 / tp_ms * 1000.0;
            }
            BatchProfile { batch, profile: p }
        };
        let sweep = vec![
            mk(1, 100.0),
            mk(2, 180.0),
            mk(4, 300.0),
            mk(8, 400.0),
            mk(16, 410.0), // +2.5% only
        ];
        assert_eq!(Xsp::optimal_batch(&sweep), 8);
    }

    #[test]
    fn batch_sweep_stops_after_saturation() {
        let xsp = xsp();
        let sweep = xsp.batch_sweep(tiny, &[1, 2, 4, 8, 16, 32, 64, 128, 256]);
        assert!(sweep.len() >= 2);
        // early termination must have kicked in before 256 for this tiny model
        // or completed the full range — either way throughput is recorded
        for p in &sweep {
            assert!(p.throughput() > 0.0);
        }
    }

    #[test]
    fn levels_report_labels() {
        assert_eq!(ProfilingLevel::Model.label(), "M");
        assert_eq!(ProfilingLevel::ModelLayer.label(), "M/L");
        assert_eq!(ProfilingLevel::ModelLayerGpu.label(), "M/L/G");
        assert!(!ProfilingLevel::Model.includes_layers());
        assert!(ProfilingLevel::ModelLayerGpu.includes_gpu());
    }
}
