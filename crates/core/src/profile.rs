//! Leveled experimentation (§III-C) and multi-run orchestration (§III-D).
//!
//! "Profilers at a specific stack level accurately capture the events within
//! that level. ... the profiling overhead can be controlled by picking the
//! profiling level. For an event at level n, the profiling overhead
//! introduced at level n+1 can be quantified by subtracting the latency of
//! the event when profilers up to level n are enabled from the latency when
//! profilers up to level n+1 are enabled."
//!
//! [`Xsp::leveled`] therefore runs the model at M, M/L, and M/L/G and keeps,
//! for every event, the measurement from the *shallowest* level that
//! observes it: model latency from M runs, layer latencies from M/L runs,
//! kernel latencies from M/L/G runs. The per-level overhead is what
//! [`LeveledProfile::overhead_report`] quantifies (Figure 2).
//!
//! Every run of a leveled experiment is independent (own tracing server,
//! own simulated context, seed-deterministic), so the orchestrators here
//! fan runs out to the parallel evaluation engine ([`crate::scheduler`])
//! and merge results in submission order — output is byte-identical for
//! any [`Parallelism`] setting.

use crate::cache::{self, GraphFingerprint};
use crate::export::ExportSink;
use crate::pipeline::{run_once, run_once_with_metrics, KernelProfile, LayerProfile, RunProfile};
use crate::scheduler::{parmap, Parallelism};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use xsp_cupti::MetricKind;
use xsp_framework::{FrameworkKind, LayerGraph};
use xsp_gpu::System;
use xsp_trace::stats::trimmed_mean;
use xsp_trace::with_span_id_scope;

/// Which profilers are enabled for a run (paper notation M, M/L, M/L/G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfilingLevel {
    /// Model-level timers only (M).
    Model,
    /// Model + framework layer profiler (M/L).
    ModelLayer,
    /// Model + layer + GPU kernel profiling (M/L/G).
    ModelLayerGpu,
}

impl ProfilingLevel {
    /// Whether the framework layer profiler is on.
    pub fn includes_layers(self) -> bool {
        matches!(
            self,
            ProfilingLevel::ModelLayer | ProfilingLevel::ModelLayerGpu
        )
    }

    /// Whether CUPTI-level profiling is on.
    pub fn includes_gpu(self) -> bool {
        matches!(self, ProfilingLevel::ModelLayerGpu)
    }

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            ProfilingLevel::Model => "M",
            ProfilingLevel::ModelLayer => "M/L",
            ProfilingLevel::ModelLayerGpu => "M/L/G",
        }
    }

    /// The accepted `--level` spellings, grouped per level (used by
    /// [`ParseLevelError`] to enumerate valid values).
    pub const SPELLINGS: [(&'static str, ProfilingLevel); 3] = [
        ("1|m|model", ProfilingLevel::Model),
        ("2|ml|m/l", ProfilingLevel::ModelLayer),
        ("3|mlg|m/l/g|full", ProfilingLevel::ModelLayerGpu),
    ];

    /// Parses the CLI `--level` spelling: `1`/`m` → M, `2`/`ml` → M/L,
    /// `3`/`mlg`/`full` → M/L/G. Rejection carries the offending value and
    /// enumerates every accepted spelling (see [`ParseLevelError`]).
    pub fn parse(raw: &str) -> Result<Self, ParseLevelError> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "m" | "model" => Ok(ProfilingLevel::Model),
            "2" | "ml" | "m/l" => Ok(ProfilingLevel::ModelLayer),
            "3" | "mlg" | "m/l/g" | "full" => Ok(ProfilingLevel::ModelLayerGpu),
            _ => Err(ParseLevelError {
                value: raw.to_owned(),
            }),
        }
    }
}

/// Rejection produced by [`ProfilingLevel::parse`]: carries the rejected
/// spelling and renders every valid one, so CLI and daemon callers surface
/// the same self-explanatory message instead of a bare "bad --level".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError {
    /// The spelling that failed to parse, verbatim.
    pub value: String,
}

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown profiling level '{}'; valid values:", self.value)?;
        for (i, (spellings, level)) in ProfilingLevel::SPELLINGS.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            write!(f, "{sep}{spellings} ({})", level.label())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseLevelError {}

/// XSP configuration: target system, framework, and measurement policy.
#[derive(Debug, Clone)]
pub struct XspConfig {
    /// Evaluation system (Table VII).
    pub system: System,
    /// Framework personality.
    pub framework: FrameworkKind,
    /// Evaluations per level ("the pipeline takes traces from a user-defined
    /// number of evaluations").
    pub runs: usize,
    /// Trim fraction for the trimmed-mean summary.
    pub trim: f64,
    /// Base jitter seed.
    pub seed: u64,
    /// Jitter amplitude.
    pub jitter: f64,
    /// GPU metrics to collect in M/L/G runs.
    pub metrics: Vec<MetricKind>,
    /// Re-run serialized when parent reconstruction is ambiguous.
    pub serialize_on_ambiguity: bool,
    /// §III-E extension: capture library-level (cuDNN/cuBLAS API) spans
    /// between the layer and kernel levels in M/L/G runs.
    pub library_level: bool,
    /// §III-E extension: capture host/CPU dispatch spans alongside the GPU
    /// activity in M/L/G runs.
    pub host_level: bool,
    /// Worker count of the parallel evaluation engine: independent
    /// `(run, level)` points of one experiment fan out to this many workers
    /// (results are merged deterministically — see [`crate::scheduler`]).
    pub parallelism: Parallelism,
    /// Streaming export sink: when set, every completed run's spans are
    /// appended (span-JSON-lines, submission order) as the experiment
    /// progresses — sweeps export as they run instead of materializing
    /// every profile first. See [`crate::export::ExportSink`].
    pub export_sink: Option<ExportSink>,
    /// Consult the process-wide content-addressed profile cache
    /// ([`crate::cache`]) on every request: hits skip profiling entirely
    /// and hand back the shared profile. Off by default — a request can
    /// still opt in per call via
    /// [`ProfileRequest::cached`](ProfileRequest::cached).
    pub cached: bool,
    /// On-disk cache directory: misses that find a persisted `.xspc` here
    /// rebuild from it instead of re-profiling, and computed profiles are
    /// persisted back. Implies [`XspConfig::cached`].
    pub cache_dir: Option<PathBuf>,
}

impl XspConfig {
    /// Default policy: 3 evaluations, 10 % trim, all four GPU metrics,
    /// engine parallelism from `XSP_THREADS` (one worker per core when
    /// unset).
    pub fn new(system: System, framework: FrameworkKind) -> Self {
        Self {
            system,
            framework,
            runs: 3,
            trim: 0.1,
            seed: 0x5E_ED,
            jitter: 0.012,
            metrics: MetricKind::ALL.to_vec(),
            serialize_on_ambiguity: true,
            library_level: false,
            host_level: false,
            parallelism: Parallelism::from_env_or(Parallelism::Auto),
            export_sink: None,
            cached: false,
            cache_dir: None,
        }
    }

    /// Builder: enable the library-level tracer (§III-E extension).
    pub fn library_level(mut self, on: bool) -> Self {
        self.library_level = on;
        self
    }

    /// Builder: enable the host/CPU tracer (§III-E extension).
    pub fn host_level(mut self, on: bool) -> Self {
        self.host_level = on;
        self
    }

    /// Builder: number of evaluations per level.
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs >= 1, "at least one evaluation");
        self.runs = runs;
        self
    }

    /// Builder: metric selection.
    pub fn metrics(mut self, metrics: Vec<MetricKind>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builder: jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: evaluation-engine worker count (overrides the `XSP_THREADS`
    /// default picked up by [`XspConfig::new`]).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder: streaming export sink — spans of every completed run are
    /// appended to it as evaluation progresses.
    pub fn export_sink(mut self, sink: ExportSink) -> Self {
        self.export_sink = Some(sink);
        self
    }

    /// Builder: consult the process-wide profile cache on every request.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self
    }

    /// Builder: persist profiles to (and rebuild them from) `.xspc` files
    /// in `dir`. Implies [`XspConfig::cached`].
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self.cached = true;
        self
    }
}

/// The merged result of leveled experimentation on one (graph, system,
/// framework) triple.
#[derive(Debug, Clone)]
pub struct LeveledProfile {
    /// M-level runs.
    pub m_runs: Vec<RunProfile>,
    /// M/L-level runs.
    pub ml_runs: Vec<RunProfile>,
    /// M/L/G-level runs (kernel tracing without metric collection).
    pub mlg_runs: Vec<RunProfile>,
    /// M/L/G runs with hardware-metric collection (kernel replay) enabled;
    /// supply the metric tags merged into [`LeveledProfile::kernels`].
    pub metric_runs: Vec<RunProfile>,
    /// Trim fraction used for summaries.
    pub trim: f64,
    /// Batch size of the profiled graph.
    pub batch: usize,
}

impl LeveledProfile {
    /// Model prediction latency, ms — the *accurate* value, from M runs.
    pub fn model_latency_ms(&self) -> f64 {
        let samples: Vec<f64> = self.m_runs.iter().map(|r| r.phases.predict_ms).collect();
        trimmed_mean(&samples, self.trim).unwrap_or(0.0)
    }

    /// Throughput, inputs/second, at this batch size.
    pub fn throughput(&self) -> f64 {
        let ms = self.model_latency_ms();
        if ms <= 0.0 {
            0.0
        } else {
            self.batch as f64 / ms * 1e3
        }
    }

    /// Per-layer profiles with latencies trimmed-averaged across M/L runs
    /// (the accurate layer-level values).
    pub fn layers(&self) -> Vec<LayerProfile> {
        merge_layers(&self.ml_runs, self.trim)
    }

    /// Per-kernel profiles: latencies merged across the plain M/L/G runs,
    /// metric values (flops, DRAM traffic, occupancy) grafted from the
    /// metric-collection runs — the per-level accuracy rule of §III-C.
    pub fn kernels(&self) -> Vec<KernelProfile> {
        let mut kernels = if self.mlg_runs.is_empty() {
            merge_kernels(&self.metric_runs, self.trim)
        } else {
            merge_kernels(&self.mlg_runs, self.trim)
        };
        if let Some(metric_run) = self.metric_runs.first() {
            for k in &mut kernels {
                if let Some(m) = metric_run.kernels.get(k.order) {
                    if m.name == k.name {
                        k.flops = m.flops;
                        k.dram_read = m.dram_read;
                        k.dram_write = m.dram_write;
                        k.occupancy = m.occupancy;
                        if k.layer_index.is_none() {
                            k.layer_index = m.layer_index;
                        }
                    }
                }
            }
        }
        kernels
    }

    /// Prediction latency of a metric-collection run — the ">100x" slowdown
    /// regime of §III-C, useful for demonstrating why leveled
    /// experimentation exists.
    pub fn metric_run_predict_ms(&self) -> f64 {
        let samples: Vec<f64> = self
            .metric_runs
            .iter()
            .map(|r| r.phases.predict_ms)
            .collect();
        trimmed_mean(&samples, self.trim).unwrap_or(0.0)
    }

    /// Layer profiles as observed in the M/L/G runs — needed when relating
    /// layers to kernels within the same run (A11-A14).
    pub fn layers_at_gpu_level(&self) -> Vec<LayerProfile> {
        if self.mlg_runs.is_empty() {
            merge_layers(&self.metric_runs, self.trim)
        } else {
            merge_layers(&self.mlg_runs, self.trim)
        }
    }

    /// Model prediction latency as observed at a given level (includes that
    /// level's profiling overhead) — the input to Figure 2.
    pub fn predict_ms_at(&self, level: ProfilingLevel) -> f64 {
        let runs = match level {
            ProfilingLevel::Model => &self.m_runs,
            ProfilingLevel::ModelLayer => &self.ml_runs,
            ProfilingLevel::ModelLayerGpu => &self.mlg_runs,
        };
        let samples: Vec<f64> = runs.iter().map(|r| r.phases.predict_ms).collect();
        trimmed_mean(&samples, self.trim).unwrap_or(0.0)
    }

    /// The leveled-experimentation overhead report (Figure 2): prediction
    /// latency observed at each level and the incremental overhead.
    pub fn overhead_report(&self) -> OverheadReport {
        let m = self.predict_ms_at(ProfilingLevel::Model);
        let ml = self.predict_ms_at(ProfilingLevel::ModelLayer);
        let mlg = self.predict_ms_at(ProfilingLevel::ModelLayerGpu);
        OverheadReport {
            model_ms: m,
            model_layer_ms: ml,
            model_layer_gpu_ms: mlg,
            layer_overhead_ms: ml - m,
            gpu_overhead_ms: mlg - ml,
        }
    }

    /// Total GPU kernel latency, ms (from M/L/G runs).
    pub fn kernel_latency_ms(&self) -> f64 {
        self.kernels().iter().map(|k| k.latency_ms).sum()
    }

    /// GPU latency percentage: kernel time over accurate model latency
    /// (Table IX "GPU latency percentage").
    pub fn gpu_latency_percent(&self) -> f64 {
        100.0 * self.kernel_latency_ms() / self.model_latency_ms().max(f64::EPSILON)
    }

    /// Every run of the profile, in canonical order: M runs, then M/L, then
    /// M/L/G, then metric runs — the order every exporter and the streaming
    /// sink use.
    pub fn runs(&self) -> impl Iterator<Item = &RunProfile> {
        [
            &self.m_runs,
            &self.ml_runs,
            &self.mlg_runs,
            &self.metric_runs,
        ]
        .into_iter()
        .flatten()
    }

    /// Every span of every run ([`LeveledProfile::runs`] order; within a
    /// run, trace-assembly order) — borrowed, so exporters can stream the
    /// profile without cloning it.
    pub fn iter_spans(&self) -> impl Iterator<Item = &xsp_trace::Span> {
        self.runs().flat_map(|run| run.trace.iter_spans())
    }

    /// Every span, cloned, in [`LeveledProfile::iter_spans`] order.
    pub fn all_spans(&self) -> Vec<xsp_trace::Span> {
        self.iter_spans().cloned().collect()
    }

    /// Serializes the whole profile ([`LeveledProfile::iter_spans`]) to raw
    /// span JSON, streamed through
    /// [`xsp_trace::export::stream::SpanJsonWriter`]. Because runs are
    /// seed-deterministic and span ids are allocated from per-run scopes,
    /// this output is byte-identical whatever [`Parallelism`] produced the
    /// profile — the determinism contract the test suite enforces.
    pub fn to_span_json(&self) -> String {
        let mut writer =
            xsp_trace::export::SpanJsonWriter::new(Vec::new()).expect("Vec writes cannot fail");
        for span in self.iter_spans() {
            writer.write_span(span).expect("Vec writes cannot fail");
        }
        String::from_utf8(writer.finish().expect("Vec writes cannot fail"))
            .expect("span JSON is UTF-8")
    }
}

fn merge_layers(runs: &[RunProfile], trim: f64) -> Vec<LayerProfile> {
    let Some(first) = runs.first() else {
        return Vec::new();
    };
    first
        .layers
        .iter()
        .map(|proto| {
            let samples: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.layers.get(proto.index))
                .map(|l| l.latency_ms)
                .collect();
            let mut merged = proto.clone();
            merged.latency_ms = trimmed_mean(&samples, trim).unwrap_or(proto.latency_ms);
            merged
        })
        .collect()
}

fn merge_kernels(runs: &[RunProfile], trim: f64) -> Vec<KernelProfile> {
    let Some(first) = runs.first() else {
        return Vec::new();
    };
    first
        .kernels
        .iter()
        .map(|proto| {
            let samples: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.kernels.get(proto.order))
                .filter(|k| k.name == proto.name)
                .map(|k| k.latency_ms)
                .collect();
            let mut merged = proto.clone();
            merged.latency_ms = trimmed_mean(&samples, trim).unwrap_or(proto.latency_ms);
            merged
        })
        .collect()
}

/// Figure 2's numbers: per-level prediction latency and incremental
/// overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Accurate model latency (M).
    pub model_ms: f64,
    /// Latency with the layer profiler on (M/L).
    pub model_layer_ms: f64,
    /// Latency with layer + GPU profiling on (M/L/G).
    pub model_layer_gpu_ms: f64,
    /// Overhead the layer profiler introduced.
    pub layer_overhead_ms: f64,
    /// Additional overhead GPU profiling introduced.
    pub gpu_overhead_ms: f64,
}

/// A point in a batch-size sweep.
#[derive(Debug, Clone)]
pub struct BatchProfile {
    /// Batch size.
    pub batch: usize,
    /// The leveled profile at this batch.
    pub profile: LeveledProfile,
}

impl BatchProfile {
    /// Throughput at this batch.
    pub fn throughput(&self) -> f64 {
        self.profile.throughput()
    }
}

/// The XSP profiler front-end.
pub struct Xsp {
    cfg: XspConfig,
}

/// One independent evaluation point submitted to the engine.
#[derive(Debug, Clone, Copy)]
struct RunSpec {
    kind: RunKind,
    /// Seed offset of the run; doubles as the span-id scope key, which is
    /// what makes id allocation independent of worker scheduling.
    run_idx: u64,
}

#[derive(Debug, Clone, Copy)]
enum RunKind {
    /// Latency measurement at the given level.
    Plain(ProfilingLevel),
    /// M/L/G run with hardware-metric collection (kernel replay).
    Metrics,
}

impl RunKind {
    /// Seed-offset base of the kind's runs. This is the *one* table of
    /// span-id scope keys: every orchestrator entry point derives its run
    /// indices from it, so e.g. an M/L run profiles (and serializes)
    /// identically whether it was launched by [`Xsp::leveled`] or
    /// `xsp export --level 2`.
    fn base(self) -> u64 {
        match self {
            RunKind::Plain(ProfilingLevel::Model) => 0,
            RunKind::Plain(ProfilingLevel::ModelLayer) => 1000,
            RunKind::Plain(ProfilingLevel::ModelLayerGpu) => 2000,
            RunKind::Metrics => 3000,
        }
    }
}

/// What a profiling request runs beside the plain latency ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// The leveled ladder up to [`ProfileRequest::level`]: M runs at every
    /// level, plus the metric-collection runs when the request reaches
    /// M/L/G — the paper's full leveled experimentation.
    #[default]
    Leveled,
    /// M runs plus metric-collection runs only — kernels without layer
    /// runs (A15 across batch sizes needs kernels but not layers). The
    /// request's level is ignored: metric collection always replays at
    /// M/L/G.
    ModelAndMetrics,
}

/// One profiling request: a graph plus the level/mode shaping which runs
/// the orchestrator submits to the evaluation engine. This is the single
/// entry point every consumer — CLI subcommands, sweeps, benches, the
/// serving tier's per-step profiles — goes through:
///
/// ```
/// use xsp_core::profile::{ProfileRequest, ProfilingLevel, Xsp, XspConfig};
/// use xsp_framework::FrameworkKind;
/// use xsp_gpu::systems;
///
/// let xsp = Xsp::new(XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow).runs(2));
/// let graph = xsp_models::zoo::by_name("MobileNet_v1_0.25_128").unwrap().graph(1);
/// // the full leveled experiment (M, M/L, M/L/G + metrics)…
/// let full = xsp.run(ProfileRequest::new(&graph));
/// assert!(!full.kernels().is_empty());
/// // …or just the cheap model-level runs of a batch sweep
/// let m = xsp.run(ProfileRequest::new(&graph).level(ProfilingLevel::Model));
/// assert!(m.model_latency_ms() > 0.0);
/// ```
///
/// The request fully determines the seed offsets (span-id scopes) of the
/// runs it expands to, so a given `(level, mode)` profiles — and
/// serializes — identically no matter which consumer submitted it.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRequest<'g> {
    graph: &'g LayerGraph,
    level: ProfilingLevel,
    mode: ProfileMode,
    /// Per-request cache override; `None` defers to [`XspConfig::cached`].
    cached: Option<bool>,
}

impl<'g> ProfileRequest<'g> {
    /// A request for the full leveled experimentation of `graph`
    /// (level M/L/G, [`ProfileMode::Leveled`]).
    pub fn new(graph: &'g LayerGraph) -> Self {
        Self {
            graph,
            level: ProfilingLevel::ModelLayerGpu,
            mode: ProfileMode::Leveled,
            cached: None,
        }
    }

    /// Truncates the leveled ladder at `level`: `Model` runs M only,
    /// `ModelLayer` runs M and M/L, `ModelLayerGpu` the full experiment
    /// including metric collection.
    pub fn level(mut self, level: ProfilingLevel) -> Self {
        self.level = level;
        self
    }

    /// Selects which run combination the request expands to.
    pub fn mode(mut self, mode: ProfileMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the config's [`XspConfig::cached`] policy for this one
    /// request: `true` consults (and fills) the process-wide profile
    /// cache, `false` forces a cold profile even under a cached config.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = Some(cached);
        self
    }

    /// The graph being profiled.
    pub fn graph(&self) -> &'g LayerGraph {
        self.graph
    }

    /// Whether this request goes through the profile cache, after applying
    /// the per-request override on top of the config default.
    fn effective_cached(&self, cfg: &XspConfig) -> bool {
        self.cached.unwrap_or(cfg.cached)
    }

    /// The run kinds the request expands to, in submission order.
    fn run_kinds(&self) -> Vec<RunKind> {
        match (self.mode, self.level) {
            (ProfileMode::Leveled, ProfilingLevel::Model) => {
                vec![RunKind::Plain(ProfilingLevel::Model)]
            }
            (ProfileMode::Leveled, ProfilingLevel::ModelLayer) => vec![
                RunKind::Plain(ProfilingLevel::Model),
                RunKind::Plain(ProfilingLevel::ModelLayer),
            ],
            (ProfileMode::Leveled, ProfilingLevel::ModelLayerGpu) => vec![
                RunKind::Plain(ProfilingLevel::Model),
                RunKind::Plain(ProfilingLevel::ModelLayer),
                RunKind::Plain(ProfilingLevel::ModelLayerGpu),
                RunKind::Metrics,
            ],
            (ProfileMode::ModelAndMetrics, _) => {
                vec![RunKind::Plain(ProfilingLevel::Model), RunKind::Metrics]
            }
        }
    }
}

impl Xsp {
    /// Creates a profiler with the given configuration.
    pub fn new(cfg: XspConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &XspConfig {
        &self.cfg
    }

    /// Executes a list of independent run specs through the parallel
    /// evaluation engine and returns the profiles in submission order.
    ///
    /// Every run is wrapped in a span-id scope keyed by its seed offset, so
    /// id allocation — and therefore the serialized trace — is independent
    /// of which worker executes the run and in what order runs complete.
    fn run_specs(&self, graph: &LayerGraph, specs: Vec<RunSpec>) -> Vec<RunProfile> {
        let profiles = parmap(self.cfg.parallelism, specs, |_, spec| {
            with_span_id_scope(spec.run_idx, || match spec.kind {
                RunKind::Plain(level) => run_once(&self.cfg, graph, level, spec.run_idx),
                RunKind::Metrics => run_once_with_metrics(
                    &self.cfg,
                    graph,
                    ProfilingLevel::ModelLayerGpu,
                    spec.run_idx,
                    true,
                ),
            })
        });
        // Stream the finished runs to the export sink right here — after
        // the deterministic submission-order merge, before the caller sees
        // them — so sweeps export incrementally and the sink's bytes are
        // identical for every worker count.
        if let Some(sink) = &self.cfg.export_sink {
            sink.write_runs(&profiles);
        }
        profiles
    }

    /// Runs `cfg.runs` evaluations of each listed kind (submission order =
    /// list order) through the engine and slots each kind's runs into the
    /// matching [`LeveledProfile`] field — the shared body of every
    /// orchestrator entry point.
    fn profile_of(&self, graph: &LayerGraph, kinds: &[RunKind]) -> LeveledProfile {
        let runs = self.cfg.runs;
        let specs = kinds
            .iter()
            .flat_map(|&kind| {
                (0..runs).map(move |i| RunSpec {
                    kind,
                    run_idx: kind.base() + i as u64,
                })
            })
            .collect();
        let mut profiles = self.run_specs(graph, specs).into_iter();
        let mut profile = LeveledProfile {
            m_runs: Vec::new(),
            ml_runs: Vec::new(),
            mlg_runs: Vec::new(),
            metric_runs: Vec::new(),
            trim: self.cfg.trim,
            batch: graph.batch(),
        };
        for &kind in kinds {
            let group = profiles.by_ref().take(runs).collect();
            match kind {
                RunKind::Plain(ProfilingLevel::Model) => profile.m_runs = group,
                RunKind::Plain(ProfilingLevel::ModelLayer) => profile.ml_runs = group,
                RunKind::Plain(ProfilingLevel::ModelLayerGpu) => profile.mlg_runs = group,
                RunKind::Metrics => profile.metric_runs = group,
            }
        }
        profile
    }

    /// Executes one [`ProfileRequest`]: `runs` evaluations of each run
    /// kind the request expands to (submission order = kind order), fanned
    /// out to the evaluation engine per [`XspConfig::parallelism`]. All
    /// points are independent and the result does not depend on the worker
    /// count:
    ///
    /// ```
    /// use xsp_core::profile::{ProfileRequest, ProfilingLevel, Xsp, XspConfig};
    /// use xsp_core::scheduler::Parallelism;
    /// use xsp_framework::FrameworkKind;
    /// use xsp_gpu::systems;
    ///
    /// let xsp = |p| {
    ///     Xsp::new(
    ///         XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow)
    ///             .runs(2)
    ///             .parallelism(p),
    ///     )
    /// };
    /// let graph = xsp_models::zoo::by_name("MobileNet_v1_0.25_128").unwrap().graph(1);
    /// let request = ProfileRequest::new(&graph).level(ProfilingLevel::Model);
    /// let parallel = xsp(Parallelism::Fixed(2)).run(request);
    /// let serial = xsp(Parallelism::Serial).run(request);
    /// // the determinism contract: worker count never changes the result
    /// assert_eq!(parallel.to_span_json(), serial.to_span_json());
    /// ```
    pub fn run(&self, request: ProfileRequest<'_>) -> LeveledProfile {
        match Arc::try_unwrap(self.run_shared(request)) {
            Ok(profile) => profile,
            Err(shared) => (*shared).clone(),
        }
    }

    /// Executes one [`ProfileRequest`] like [`Xsp::run`], returning the
    /// profile behind an [`Arc`] — the entry point for consumers that keep
    /// profiles around (the serving memo, sweeps over repeated shapes),
    /// where a cache hit must stay a pointer bump instead of a span-vector
    /// deep copy.
    ///
    /// When the request opts into caching (via [`ProfileRequest::cached`]
    /// or [`XspConfig::cached`]), the process-wide
    /// [`crate::cache::global`] cache is consulted first, then the
    /// [`XspConfig::cache_dir`] disk tier, and only then is the profile
    /// computed (and stored back in both tiers). A hit replays the
    /// profile's runs to any configured export sink in the canonical
    /// [`LeveledProfile::runs`] order — exactly the submission order a
    /// cold run streams — so sink bytes stay identical, warm or cold, at
    /// any worker count.
    pub fn run_shared(&self, request: ProfileRequest<'_>) -> Arc<LeveledProfile> {
        if !request.effective_cached(&self.cfg) {
            let profile = Arc::new(self.profile_of(request.graph(), &request.run_kinds()));
            return profile;
        }
        let fingerprint =
            GraphFingerprint::of(&self.cfg, request.graph, request.level, request.mode);
        let shared = cache::global();
        if let Some(hit) = shared.get(fingerprint.0) {
            self.replay_to_sink(&hit);
            return hit;
        }
        if let Some(dir) = &self.cfg.cache_dir {
            if let Some(loaded) = cache::load_from_dir(dir, fingerprint) {
                shared.note_disk_hit();
                shared.insert(fingerprint.0, Arc::clone(&loaded));
                self.replay_to_sink(&loaded);
                return loaded;
            }
        }
        // Cold: profile normally (run_specs streams to the sink itself),
        // then fill both tiers. Persistence failures degrade to a
        // recompute next time — a full disk must not fail the run.
        let profile = Arc::new(self.profile_of(request.graph(), &request.run_kinds()));
        shared.insert(fingerprint.0, Arc::clone(&profile));
        if let Some(dir) = &self.cfg.cache_dir {
            let _ = cache::persist_to_dir(dir, fingerprint, &profile);
        }
        profile
    }

    /// Streams a cache-served profile's runs to the configured export
    /// sink, replicating exactly what the cold path's per-merge
    /// [`ExportSink`] write produced: runs in canonical order, which *is*
    /// the submission order every request expands its kinds in.
    fn replay_to_sink(&self, profile: &LeveledProfile) {
        if let Some(sink) = &self.cfg.export_sink {
            sink.write_runs(profile.runs());
        }
    }

    /// Runs the full leveled experimentation on one graph.
    #[deprecated(
        since = "0.1.0",
        note = "use `xsp.run(ProfileRequest::new(graph))` — see the migration note in ARCHITECTURE.md"
    )]
    pub fn leveled(&self, graph: &LayerGraph) -> LeveledProfile {
        self.run(ProfileRequest::new(graph))
    }

    /// Leveled experimentation truncated at `level`.
    #[deprecated(
        since = "0.1.0",
        note = "use `xsp.run(ProfileRequest::new(graph).level(level))` — see the migration note in ARCHITECTURE.md"
    )]
    pub fn up_to_level(&self, graph: &LayerGraph, level: ProfilingLevel) -> LeveledProfile {
        self.run(ProfileRequest::new(graph).level(level))
    }

    /// Model-level only (cheap; used by batch sweeps).
    #[deprecated(
        since = "0.1.0",
        note = "use `xsp.run(ProfileRequest::new(graph).level(ProfilingLevel::Model))` — see the migration note in ARCHITECTURE.md"
    )]
    pub fn model_only(&self, graph: &LayerGraph) -> LeveledProfile {
        self.run(ProfileRequest::new(graph).level(ProfilingLevel::Model))
    }

    /// Model + GPU-level only profile.
    #[deprecated(
        since = "0.1.0",
        note = "use `xsp.run(ProfileRequest::new(graph).mode(ProfileMode::ModelAndMetrics))` — see the migration note in ARCHITECTURE.md"
    )]
    pub fn with_gpu(&self, graph: &LayerGraph) -> LeveledProfile {
        self.run(ProfileRequest::new(graph).mode(ProfileMode::ModelAndMetrics))
    }

    /// Sweeps batch sizes (model-level profiling only), stopping early once
    /// throughput stops improving for two consecutive doublings.
    ///
    /// The sweep itself is sequential — each point decides whether the next
    /// one runs — but the evaluations *within* each point fan out to the
    /// engine. Full-range sweeps with no early stop (the figure benches)
    /// parallelize across batch points instead via [`crate::scheduler::parmap`].
    pub fn batch_sweep(
        &self,
        build: impl Fn(usize) -> LayerGraph,
        batches: &[usize],
    ) -> Vec<BatchProfile> {
        let mut out = Vec::new();
        let mut stale = 0usize;
        let mut best = 0.0f64;
        for &batch in batches {
            let graph = build(batch);
            let profile = self.run(ProfileRequest::new(&graph).level(ProfilingLevel::Model));
            let tp = profile.throughput();
            out.push(BatchProfile { batch, profile });
            if tp > best * 1.02 {
                best = best.max(tp);
                stale = 0;
            } else {
                stale += 1;
                if stale >= 2 {
                    break;
                }
            }
        }
        out
    }

    /// The paper's optimal-batch-size rule (§III-D1): "the batch size where
    /// doubling it does not increase the model's throughput by more than
    /// 5%".
    pub fn optimal_batch(sweep: &[BatchProfile]) -> usize {
        if sweep.is_empty() {
            return 1;
        }
        for w in sweep.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if b.batch == a.batch * 2 && b.throughput() <= a.throughput() * 1.05 {
                return a.batch;
            }
        }
        sweep
            .iter()
            .max_by(|a, b| a.throughput().partial_cmp(&b.throughput()).unwrap())
            .map(|p| p.batch)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_gpu::systems;
    use xsp_models::zoo;

    fn xsp() -> Xsp {
        Xsp::new(XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow).runs(2))
    }

    fn tiny(batch: usize) -> LayerGraph {
        zoo::by_name("MobileNet_v1_0.25_128").unwrap().graph(batch)
    }

    #[test]
    fn leveled_profile_is_complete() {
        let p = xsp().run(ProfileRequest::new(&tiny(2)));
        assert_eq!(p.m_runs.len(), 2);
        assert!(!p.layers().is_empty());
        assert!(!p.kernels().is_empty());
        assert!(p.model_latency_ms() > 0.0);
        assert!(p.throughput() > 0.0);
    }

    #[test]
    fn overheads_are_positive_and_ordered() {
        let p = xsp().run(ProfileRequest::new(&tiny(2)));
        let o = p.overhead_report();
        assert!(
            o.model_ms < o.model_layer_ms,
            "layer profiling must add overhead: {o:?}"
        );
        assert!(
            o.model_layer_ms < o.model_layer_gpu_ms,
            "gpu profiling must add more overhead: {o:?}"
        );
        assert!(o.layer_overhead_ms > 0.0);
        assert!(o.gpu_overhead_ms > 0.0);
    }

    #[test]
    fn gpu_latency_percent_is_sane() {
        let p = xsp().run(ProfileRequest::new(&tiny(2)));
        let pct = p.gpu_latency_percent();
        assert!(pct > 5.0 && pct < 100.0, "GPU latency {pct}%");
    }

    #[test]
    fn optimal_batch_rule_applies_5_percent_doubling() {
        // synthetic sweep: throughput saturates at batch 8
        let mk = |batch: usize, tp_ms: f64| {
            let mut p = xsp().run(ProfileRequest::new(&tiny(1)).level(ProfilingLevel::Model));
            // overwrite the measured latency by fabricating batch/latency
            p.batch = batch;
            for r in &mut p.m_runs {
                r.phases.predict_ms = batch as f64 / tp_ms * 1000.0;
            }
            BatchProfile { batch, profile: p }
        };
        let sweep = vec![
            mk(1, 100.0),
            mk(2, 180.0),
            mk(4, 300.0),
            mk(8, 400.0),
            mk(16, 410.0), // +2.5% only
        ];
        assert_eq!(Xsp::optimal_batch(&sweep), 8);
    }

    #[test]
    fn batch_sweep_stops_after_saturation() {
        let xsp = xsp();
        let sweep = xsp.batch_sweep(tiny, &[1, 2, 4, 8, 16, 32, 64, 128, 256]);
        assert!(sweep.len() >= 2);
        // early termination must have kicked in before 256 for this tiny model
        // or completed the full range — either way throughput is recorded
        for p in &sweep {
            assert!(p.throughput() > 0.0);
        }
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let cfg = |p| {
            XspConfig::new(systems::tesla_v100(), FrameworkKind::TensorFlow)
                .runs(2)
                .parallelism(p)
        };
        let serial = Xsp::new(cfg(Parallelism::Serial)).run(ProfileRequest::new(&tiny(2)));
        let parallel = Xsp::new(cfg(Parallelism::Fixed(4))).run(ProfileRequest::new(&tiny(2)));
        assert_eq!(
            serial.to_span_json(),
            parallel.to_span_json(),
            "worker count must not change the trace"
        );
        assert_eq!(serial.model_latency_ms(), parallel.model_latency_ms());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_run() {
        // The four pre-ProfileRequest entry points must stay byte-identical
        // to the requests they document as replacements.
        let xsp = xsp();
        let g = tiny(2);
        assert_eq!(
            xsp.leveled(&g).to_span_json(),
            xsp.run(ProfileRequest::new(&g)).to_span_json()
        );
        assert_eq!(
            xsp.model_only(&g).to_span_json(),
            xsp.run(ProfileRequest::new(&g).level(ProfilingLevel::Model))
                .to_span_json()
        );
        assert_eq!(
            xsp.up_to_level(&g, ProfilingLevel::ModelLayer)
                .to_span_json(),
            xsp.run(ProfileRequest::new(&g).level(ProfilingLevel::ModelLayer))
                .to_span_json()
        );
        assert_eq!(
            xsp.with_gpu(&g).to_span_json(),
            xsp.run(ProfileRequest::new(&g).mode(ProfileMode::ModelAndMetrics))
                .to_span_json()
        );
    }

    #[test]
    fn levels_report_labels() {
        assert_eq!(ProfilingLevel::Model.label(), "M");
        assert_eq!(ProfilingLevel::ModelLayer.label(), "M/L");
        assert_eq!(ProfilingLevel::ModelLayerGpu.label(), "M/L/G");
        assert!(!ProfilingLevel::Model.includes_layers());
        assert!(ProfilingLevel::ModelLayerGpu.includes_gpu());
    }

    #[test]
    fn level_parse_accepts_every_spelling() {
        for (spellings, level) in ProfilingLevel::SPELLINGS {
            for s in spellings.split('|') {
                assert_eq!(ProfilingLevel::parse(s), Ok(level), "{s}");
                assert_eq!(ProfilingLevel::parse(&s.to_uppercase()), Ok(level));
            }
        }
        assert_eq!(ProfilingLevel::parse(" 2 "), Ok(ProfilingLevel::ModelLayer));
    }

    #[test]
    fn level_parse_rejection_lists_valid_values() {
        let err = ProfilingLevel::parse("deep").unwrap_err();
        assert_eq!(err.value, "deep");
        let msg = err.to_string();
        assert!(msg.contains("unknown profiling level 'deep'"), "{msg}");
        // The message must enumerate every accepted spelling with its label.
        for (spellings, level) in ProfilingLevel::SPELLINGS {
            assert!(msg.contains(spellings), "{msg} missing {spellings}");
            assert!(
                msg.contains(level.label()),
                "{msg} missing {}",
                level.label()
            );
        }
        // The rejected value survives verbatim (no trim/lowercase) so the
        // user recognizes their own input.
        assert_eq!(ProfilingLevel::parse(" M/G ").unwrap_err().value, " M/G ");
    }
}
