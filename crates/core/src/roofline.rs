//! Roofline analysis helpers (§III-D3).
//!
//! `arithmetic_intensity = flops / (dram_read + dram_write)`,
//! `arithmetic_throughput = flops / latency`, and a kernel/layer/model is
//! memory-bound iff its arithmetic intensity is below the device's ideal
//! arithmetic intensity (`peak_FLOPS / memory_bandwidth`).

use xsp_gpu::System;

/// One point in a roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// What the point describes (kernel/layer/model name).
    pub name: String,
    /// Arithmetic intensity, flops/byte.
    pub arithmetic_intensity: f64,
    /// Arithmetic throughput, Tflops/s.
    pub throughput_tflops: f64,
    /// Latency used for the throughput computation, ms.
    pub latency_ms: f64,
    /// Whether the point is memory-bound on the reference system.
    pub memory_bound: bool,
}

/// Computes a roofline point from raw counters.
///
/// Returns `None` when latency is zero (no throughput defined). Zero memory
/// traffic yields infinite intensity — treated as compute-bound.
pub fn classify(
    name: impl Into<String>,
    flops: u64,
    dram_read: u64,
    dram_write: u64,
    latency_ms: f64,
    system: &System,
) -> Option<RooflinePoint> {
    if latency_ms <= 0.0 {
        return None;
    }
    let bytes = dram_read + dram_write;
    let ai = if bytes == 0 {
        f64::INFINITY
    } else {
        flops as f64 / bytes as f64
    };
    let throughput = flops as f64 / (latency_ms / 1e3) / 1e12;
    Some(RooflinePoint {
        name: name.into(),
        arithmetic_intensity: ai,
        throughput_tflops: throughput,
        latency_ms,
        memory_bound: ai < system.ideal_arithmetic_intensity(),
    })
}

/// The attainable-throughput ceiling at a given arithmetic intensity
/// (`min(peak, ai × bandwidth)`), Tflops/s — the roofline itself.
pub fn attainable_tflops(ai: f64, system: &System) -> f64 {
    let bw_limited = ai * system.gpu.bandwidth_bytes() / 1e12;
    bw_limited.min(system.gpu.peak_tflops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_gpu::systems;

    #[test]
    fn v100_boundary_is_17_44() {
        let v100 = systems::tesla_v100();
        // just below the ideal AI: memory-bound
        let below = classify("k", 17_000, 500, 500, 1.0, &v100).unwrap();
        assert!(below.memory_bound);
        // just above: compute-bound
        let above = classify("k", 18_000, 500, 500, 1.0, &v100).unwrap();
        assert!(!above.memory_bound);
    }

    #[test]
    fn zero_traffic_is_compute_bound() {
        let v100 = systems::tesla_v100();
        let p = classify("cached", 1000, 0, 0, 1.0, &v100).unwrap();
        assert!(!p.memory_bound);
        assert!(p.arithmetic_intensity.is_infinite());
    }

    #[test]
    fn zero_latency_is_undefined() {
        let v100 = systems::tesla_v100();
        assert!(classify("k", 1000, 1, 1, 0.0, &v100).is_none());
    }

    #[test]
    fn throughput_math() {
        let v100 = systems::tesla_v100();
        // 1 Gflop in 1 ms = 1 Tflop/s
        let p = classify("k", 1_000_000_000, 1, 1, 1.0, &v100).unwrap();
        assert!((p.throughput_tflops - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_ceiling() {
        let v100 = systems::tesla_v100();
        // far right: compute ceiling
        assert_eq!(attainable_tflops(1e9, &v100), 15.7);
        // at AI 1: bandwidth-limited to 0.9 Tflops
        assert!((attainable_tflops(1.0, &v100) - 0.9).abs() < 1e-9);
        // ceiling crosses at the ideal AI
        let ideal = v100.ideal_arithmetic_intensity();
        assert!((attainable_tflops(ideal, &v100) - 15.7).abs() < 0.01);
    }

    #[test]
    fn p4_boundary_differs() {
        let p4 = systems::tesla_p4();
        // AI 20 is compute-bound on V100 (17.44) but memory-bound on P4 (28.6)
        let v = classify("k", 20_000, 500, 500, 1.0, &systems::tesla_v100()).unwrap();
        let p = classify("k", 20_000, 500, 500, 1.0, &p4).unwrap();
        assert!(!v.memory_bound);
        assert!(p.memory_bound);
    }
}
