//! A minimal FxHash-style hasher for the trace-path index maps.
//!
//! The indexed trace store ([`crate::server::Trace`],
//! [`crate::correlate::CorrelatedTrace`]) builds `SpanId → index` and
//! `parent → children` maps once per trace. With `std`'s default SipHash
//! those builds show up in the correlation hot path (tens of nanoseconds
//! per insert, tens of microseconds per 10k-span drain); the keys are
//! process-internal integers ([`crate::span::SpanId`],
//! [`crate::span::TraceId`]), so DoS resistance buys nothing here. This is
//! the multiply-fold hasher rustc and Firefox use (`fxhash`), reimplemented
//! because the workspace vendors all dependencies.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`] — drop-in for `std::collections::HashMap`
/// on trusted integer-like keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`] — drop-in for `std::collections::HashSet`
/// on trusted integer-like keys.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// The 64-bit multiplicative constant fxhash uses (derived from the golden
/// ratio, as in Fibonacci hashing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher (fxhash). Not cryptographic, not
/// collision-resistant against adversarial keys — only for internal ids.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Smoke: sequential ids (the realistic key distribution) spread out.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on sequential ids");
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as usize * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.get(&1000), None);
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut a = FxHasher::default();
        a.write(b"0123456789"); // 8-byte chunk + 2-byte remainder
        let mut b = FxHasher::default();
        b.write(b"0123456788");
        assert_ne!(a.finish(), b.finish());
    }
}
