//! An augmented interval tree used to reconstruct parent-child relations
//! between spans from disjoint profilers (§III-A: "XSP's profile analysis
//! builds an interval tree and populates it with intervals corresponding to
//! the spans' start/end timestamps").
//!
//! The tree is built once per trace from the full set of span intervals and
//! then queried for *containment*: given a child interval, find the candidate
//! parents whose intervals include it. The implementation is an implicit
//! balanced BST over intervals sorted by start point, augmented with the
//! maximum end point of each subtree — `O(n log n)` construction,
//! `O(log n + k)` stabbing queries.

/// A closed interval `[start, end]` with an opaque payload (usually an index
/// into a span table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive start.
    pub start: u64,
    /// Inclusive end. Invariant: `end >= start`.
    pub end: u64,
    /// Caller-defined payload (e.g. span index).
    pub key: usize,
}

impl Interval {
    /// Creates an interval; panics if `end < start`.
    pub fn new(start: u64, end: u64, key: usize) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        Self { start, end, key }
    }

    /// Whether this interval fully contains `[lo, hi]`.
    #[inline]
    pub fn contains_range(&self, lo: u64, hi: u64) -> bool {
        self.start <= lo && hi <= self.end
    }

    /// Whether this interval contains the point `p`.
    #[inline]
    pub fn contains_point(&self, p: u64) -> bool {
        self.start <= p && p <= self.end
    }

    /// Whether this interval overlaps `[lo, hi]` at all.
    #[inline]
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.start <= hi && lo <= self.end
    }
}

#[derive(Debug, Clone)]
struct Node {
    iv: Interval,
    /// Maximum `end` in the subtree rooted here.
    max_end: u64,
    left: Option<usize>,
    right: Option<usize>,
}

/// Static interval tree over a set of intervals.
///
/// ```
/// use xsp_trace::interval::{Interval, IntervalTree};
/// let tree = IntervalTree::build(vec![
///     Interval::new(0, 100, 0),   // a layer
///     Interval::new(10, 40, 1),   // a kernel inside it
///     Interval::new(60, 90, 2),   // another kernel
/// ]);
/// let parents: Vec<usize> = tree.containing(10, 40).map(|iv| iv.key).collect();
/// assert!(parents.contains(&0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IntervalTree {
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl IntervalTree {
    /// Builds a balanced tree from the given intervals.
    pub fn build(mut intervals: Vec<Interval>) -> Self {
        intervals.sort_unstable_by(|a, b| a.start.cmp(&b.start).then(a.end.cmp(&b.end)));
        let mut tree = IntervalTree {
            nodes: Vec::with_capacity(intervals.len()),
            root: None,
        };
        tree.root = tree.build_range(&intervals, 0, intervals.len());
        tree
    }

    fn build_range(&mut self, sorted: &[Interval], lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let mid = lo + (hi - lo) / 2;
        let idx = self.nodes.len();
        self.nodes.push(Node {
            iv: sorted[mid],
            max_end: sorted[mid].end,
            left: None,
            right: None,
        });
        let left = self.build_range(sorted, lo, mid);
        let right = self.build_range(sorted, mid + 1, hi);
        let mut max_end = self.nodes[idx].iv.end;
        if let Some(l) = left {
            max_end = max_end.max(self.nodes[l].max_end);
        }
        if let Some(r) = right {
            max_end = max_end.max(self.nodes[r].max_end);
        }
        let node = &mut self.nodes[idx];
        node.left = left;
        node.right = right;
        node.max_end = max_end;
        Some(idx)
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All intervals that fully contain the range `[lo, hi]`.
    ///
    /// This is the query parent reconstruction uses: candidate parents of a
    /// span are exactly the intervals containing the span's interval.
    pub fn containing(&self, lo: u64, hi: u64) -> impl Iterator<Item = &Interval> {
        let mut out = Vec::new();
        self.visit_containing(self.root, lo, hi, &mut out);
        out.into_iter()
    }

    fn visit_containing<'a>(
        &'a self,
        node: Option<usize>,
        lo: u64,
        hi: u64,
        out: &mut Vec<&'a Interval>,
    ) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        // An interval containing [lo, hi] must have end >= hi; prune subtrees
        // whose max_end can't reach.
        if n.max_end < hi {
            return;
        }
        // Visit left subtree: starts there are <= this node's start.
        self.visit_containing(n.left, lo, hi, out);
        if n.iv.contains_range(lo, hi) {
            out.push(&n.iv);
        }
        // Right subtree only holds intervals starting at >= this start; if
        // this node already starts after `lo`, so does everything right of it.
        if n.iv.start <= lo {
            self.visit_containing(n.right, lo, hi, out);
        }
    }

    /// All intervals overlapping `[lo, hi]`.
    pub fn overlapping(&self, lo: u64, hi: u64) -> impl Iterator<Item = &Interval> {
        let mut out = Vec::new();
        self.visit_overlapping(self.root, lo, hi, &mut out);
        out.into_iter()
    }

    fn visit_overlapping<'a>(
        &'a self,
        node: Option<usize>,
        lo: u64,
        hi: u64,
        out: &mut Vec<&'a Interval>,
    ) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        if n.max_end < lo {
            return;
        }
        self.visit_overlapping(n.left, lo, hi, out);
        if n.iv.overlaps(lo, hi) {
            out.push(&n.iv);
        }
        if n.iv.start <= hi {
            self.visit_overlapping(n.right, lo, hi, out);
        }
    }

    /// All intervals containing the point `p` (stabbing query).
    pub fn stab(&self, p: u64) -> impl Iterator<Item = &Interval> {
        self.containing(p, p)
    }

    /// All intervals fully contained within `[lo, hi]`.
    pub fn contained_in(&self, lo: u64, hi: u64) -> impl Iterator<Item = &Interval> {
        let mut out = Vec::new();
        self.visit_contained(self.root, lo, hi, &mut out);
        out.into_iter()
    }

    fn visit_contained<'a>(
        &'a self,
        node: Option<usize>,
        lo: u64,
        hi: u64,
        out: &mut Vec<&'a Interval>,
    ) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        if n.max_end < lo {
            return;
        }
        self.visit_contained(n.left, lo, hi, out);
        if lo <= n.iv.start && n.iv.end <= hi {
            out.push(&n.iv);
        }
        if n.iv.start <= hi {
            self.visit_contained(n.right, lo, hi, out);
        }
    }

    /// Depth of the tree (0 for empty); balanced construction guarantees
    /// `O(log n)`.
    pub fn depth(&self) -> usize {
        fn go(tree: &IntervalTree, node: Option<usize>) -> usize {
            match node {
                None => 0,
                Some(i) => 1 + go(tree, tree.nodes[i].left).max(go(tree, tree.nodes[i].right)),
            }
        }
        go(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_keys<'a>(it: impl Iterator<Item = &'a Interval>) -> Vec<usize> {
        let mut v: Vec<usize> = it.map(|iv| iv.key).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let t = IntervalTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.stab(5).count(), 0);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn containing_finds_all_ancestors() {
        let t = IntervalTree::build(vec![
            Interval::new(0, 1000, 0),  // model
            Interval::new(10, 500, 1),  // layer 1
            Interval::new(510, 900, 2), // layer 2
            Interval::new(20, 100, 3),  // kernel in layer 1
        ]);
        assert_eq!(sorted_keys(t.containing(20, 100)), vec![0, 1, 3]);
        assert_eq!(sorted_keys(t.containing(510, 900)), vec![0, 2]);
        assert_eq!(sorted_keys(t.containing(5, 5)), vec![0]);
    }

    #[test]
    fn contained_in_finds_descendants() {
        let t = IntervalTree::build(vec![
            Interval::new(0, 1000, 0),
            Interval::new(10, 500, 1),
            Interval::new(20, 100, 2),
            Interval::new(600, 700, 3),
        ]);
        assert_eq!(sorted_keys(t.contained_in(10, 500)), vec![1, 2]);
        assert_eq!(sorted_keys(t.contained_in(0, 1000)), vec![0, 1, 2, 3]);
        assert_eq!(sorted_keys(t.contained_in(21, 99)), Vec::<usize>::new());
    }

    #[test]
    fn overlapping_respects_boundaries() {
        let t = IntervalTree::build(vec![
            Interval::new(0, 10, 0),
            Interval::new(10, 20, 1),
            Interval::new(21, 30, 2),
        ]);
        // closed intervals: [0,10] and [10,20] both touch point 10
        assert_eq!(sorted_keys(t.overlapping(10, 10)), vec![0, 1]);
        assert_eq!(sorted_keys(t.overlapping(0, 30)), vec![0, 1, 2]);
        assert_eq!(sorted_keys(t.overlapping(31, 40)), Vec::<usize>::new());
    }

    #[test]
    fn stab_is_containing_point() {
        let t = IntervalTree::build(vec![
            Interval::new(0, 100, 0),
            Interval::new(50, 60, 1),
            Interval::new(55, 58, 2),
        ]);
        assert_eq!(sorted_keys(t.stab(56)), vec![0, 1, 2]);
        assert_eq!(sorted_keys(t.stab(61)), vec![0]);
    }

    #[test]
    fn depth_is_logarithmic() {
        let intervals: Vec<Interval> = (0..1024u64)
            .map(|i| Interval::new(i, i + 1, i as usize))
            .collect();
        let t = IntervalTree::build(intervals);
        assert_eq!(t.len(), 1024);
        assert!(
            t.depth() <= 11,
            "depth {} too deep for 1024 nodes",
            t.depth()
        );
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn inverted_interval_panics() {
        Interval::new(10, 5, 0);
    }

    #[test]
    fn duplicate_intervals_are_all_reported() {
        let t = IntervalTree::build(vec![
            Interval::new(5, 10, 0),
            Interval::new(5, 10, 1),
            Interval::new(5, 10, 2),
        ]);
        assert_eq!(sorted_keys(t.containing(6, 7)), vec![0, 1, 2]);
    }

    // Exhaustive cross-check against a naive scan on a fixed pseudo-random set.
    #[test]
    fn matches_naive_oracle() {
        // simple LCG so the test needs no external randomness
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 1000
        };
        let intervals: Vec<Interval> = (0..300)
            .map(|k| {
                let a = next();
                let b = next();
                Interval::new(a.min(b), a.max(b), k)
            })
            .collect();
        let tree = IntervalTree::build(intervals.clone());
        for probe in 0..40 {
            let lo = probe * 25;
            let hi = lo + probe * 3;
            let naive_containing: Vec<usize> = {
                let mut v: Vec<usize> = intervals
                    .iter()
                    .filter(|iv| iv.contains_range(lo, hi))
                    .map(|iv| iv.key)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sorted_keys(tree.containing(lo, hi)), naive_containing);

            let naive_overlap: Vec<usize> = {
                let mut v: Vec<usize> = intervals
                    .iter()
                    .filter(|iv| iv.overlaps(lo, hi))
                    .map(|iv| iv.key)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sorted_keys(tree.overlapping(lo, hi)), naive_overlap);

            let naive_contained: Vec<usize> = {
                let mut v: Vec<usize> = intervals
                    .iter()
                    .filter(|iv| lo <= iv.start && iv.end <= hi)
                    .map(|iv| iv.key)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sorted_keys(tree.contained_in(lo, hi)), naive_contained);
        }
    }
}
