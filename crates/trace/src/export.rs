//! Trace export: Chrome trace-event JSON (loadable in `chrome://tracing` /
//! Perfetto), Brendan-Gregg folded stacks, and raw span JSON for offline
//! analysis pipelines.
//!
//! The string-returning functions here are thin wrappers over the
//! incremental writers in [`stream`]: they serialize through exactly the
//! same code path into an in-memory buffer, so a streamed export to a file
//! or socket is byte-identical to the materialized `String`. Sweep-scale
//! traces should use the [`stream`] writers directly and never hold the
//! full serialized trace in memory.

use crate::server::Trace;
use crate::span::Span;

pub mod binary;
pub mod stream;

pub use binary::{
    is_xspb_prefix, read_span_binary, spans_to_binary, BinaryReadError, SpanBinaryReader,
    SpanBinaryWriter, MAX_RECORD_LEN, XSPB_MAGIC, XSPB_VERSION,
};
pub use stream::{
    read_span_json_lines, ChromeTraceWriter, FoldedStacksWriter, ReadError, SpanJsonLinesReader,
    SpanJsonLinesWriter, SpanJsonWriter,
};

/// Serializes a trace to Chrome trace-event JSON. Each stack level maps to
/// its own "thread" row so the across-stack timeline reads top-down like
/// Figure 1 of the paper.
pub fn to_chrome_trace(trace: &Trace) -> String {
    to_chrome_trace_of(trace.spans().iter())
}

/// The iterator twin of [`to_chrome_trace`]: serializes any borrowed span
/// sequence (e.g. a [`crate::correlate::CorrelatedTrace`] view) to Chrome
/// trace-event JSON without materializing an intermediate [`Trace`].
pub fn to_chrome_trace_of<'a>(spans: impl Iterator<Item = &'a Span>) -> String {
    let mut writer = stream::ChromeTraceWriter::new(Vec::new()).expect("Vec writes cannot fail");
    for span in spans {
        writer.write_span(span).expect("Vec writes cannot fail");
    }
    String::from_utf8(writer.finish().expect("Vec writes cannot fail"))
        .expect("chrome trace output is UTF-8")
}

/// Serializes a correlated trace to Brendan-Gregg folded-stack format, one
/// line per leaf span: `model_prediction;conv2d/Conv2D;volta_scudnn 1234`
/// (weight = self time in microseconds). Feed to `flamegraph.pl` or
/// speedscope.
pub fn to_folded_stacks(trace: &crate::correlate::CorrelatedTrace) -> String {
    let mut writer = stream::FoldedStacksWriter::new(Vec::new());
    writer.write_run(trace).expect("Vec writes cannot fail");
    String::from_utf8(writer.finish().expect("Vec writes cannot fail"))
        .expect("folded stack output is UTF-8")
}

/// Serializes the raw spans to JSON (offline-analysis input format).
pub fn to_span_json(trace: &Trace) -> String {
    let mut writer = stream::SpanJsonWriter::new(Vec::new()).expect("Vec writes cannot fail");
    writer.write_trace(trace).expect("Vec writes cannot fail");
    String::from_utf8(writer.finish().expect("Vec writes cannot fail"))
        .expect("span JSON output is UTF-8")
}

/// Deserializes spans previously written by [`to_span_json`]; this is the
/// offline conversion path (§III-A: conversion "can be performed off-line by
/// processing the output of the profiler").
pub fn from_span_json(json: &str) -> Result<Trace, serde_json::Error> {
    let spans: Vec<Span> = serde_json::from_str(json)?;
    Ok(Trace::from_spans(spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuilder, StackLevel, TraceId};

    fn sample_trace() -> Trace {
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .tag("batch_size", 256u64)
            .finish(1_000_000);
        let pid = model.id;
        let layer = SpanBuilder::new("conv2d/Conv2D", StackLevel::Layer, TraceId(1))
            .start(1_000)
            .parent(pid)
            .tag("occ", 0.5f64)
            .finish(500_000);
        Trace::from_spans(vec![model, layer])
    }

    #[test]
    fn chrome_trace_shape() {
        let json = to_chrome_trace(&sample_trace());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["cat"], "model");
        assert_eq!(events[1]["cat"], "layer");
        assert_eq!(events[1]["tid"], 2); // layer rank
        assert!(events[1]["args"]["parent"].is_u64());
        // ns -> µs conversion
        assert_eq!(events[0]["dur"].as_f64().unwrap(), 1_000.0);
    }

    #[test]
    fn span_json_roundtrip() {
        let trace = sample_trace();
        let json = to_span_json(&trace);
        let back = from_span_json(&json).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.spans()[0].name, "predict");
        assert_eq!(back.spans()[1].parent, trace.spans()[1].parent);
        assert_eq!(
            back.spans()[0].tag("batch_size").unwrap().as_u64(),
            Some(256)
        );
    }

    #[test]
    fn span_json_wrapper_matches_direct_serialization() {
        // The pre-streaming exporter was serde_json::to_string(spans);
        // the wrapper must reproduce it byte-for-byte.
        let trace = sample_trace();
        assert_eq!(
            to_span_json(&trace),
            serde_json::to_string(trace.spans()).unwrap()
        );
        assert_eq!(to_span_json(&Trace::default()), "[]");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_span_json("not json").is_err());
    }

    #[test]
    fn folded_stacks_weight_self_time() {
        use crate::correlate::reconstruct_parents;
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .finish(10_000_000); // 10 ms
        let layer = SpanBuilder::new("conv", StackLevel::Layer, TraceId(1))
            .start(1_000_000)
            .finish(9_000_000); // 8 ms
        let kernel = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(2_000_000)
            .finish(8_000_000); // 6 ms
        let c = reconstruct_parents(&Trace::from_spans(vec![model, layer, kernel]));
        let folded = to_folded_stacks(&c);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3, "{folded}");
        assert!(lines.contains(&"predict 2000"), "{folded}"); // 10-8 ms self
        assert!(lines.contains(&"predict;conv 2000"), "{folded}");
        assert!(lines.contains(&"predict;conv;k 6000"), "{folded}");
    }

    #[test]
    fn folded_stacks_sanitize_names() {
        use crate::correlate::reconstruct_parents;
        let s = SpanBuilder::new("has space;semi", StackLevel::Model, TraceId(1))
            .start(0)
            .finish(2_000);
        let c = reconstruct_parents(&Trace::from_spans(vec![s]));
        let folded = to_folded_stacks(&c);
        assert!(folded.starts_with("has_space_semi "), "{folded}");
    }
}
