//! Trace export: Chrome trace-event JSON (loadable in `chrome://tracing` /
//! Perfetto) and raw span JSON for offline analysis pipelines.

use crate::server::Trace;
use crate::span::{Span, TagValue};
use serde::Serialize;

/// One event in Chrome trace-event format ("X" complete events).
#[derive(Debug, Serialize)]
struct ChromeEvent<'a> {
    name: &'a str,
    cat: String,
    ph: &'static str,
    /// Microseconds (Chrome's unit).
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
    args: serde_json::Map<String, serde_json::Value>,
}

fn tag_to_json(v: &TagValue) -> serde_json::Value {
    match v {
        TagValue::Str(s) => serde_json::Value::String(s.clone()),
        TagValue::I64(i) => serde_json::json!(i),
        TagValue::U64(u) => serde_json::json!(u),
        TagValue::F64(f) => serde_json::json!(f),
        TagValue::Bool(b) => serde_json::Value::Bool(*b),
    }
}

/// Serializes a trace to Chrome trace-event JSON. Each stack level maps to
/// its own "thread" row so the across-stack timeline reads top-down like
/// Figure 1 of the paper.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let events: Vec<ChromeEvent<'_>> = trace
        .spans()
        .iter()
        .map(|s| {
            let mut args = serde_json::Map::new();
            args.insert("span_id".into(), serde_json::json!(s.id.0));
            if let Some(p) = s.parent {
                args.insert("parent".into(), serde_json::json!(p.0));
            }
            for (k, v) in &s.tags {
                args.insert(k.clone(), tag_to_json(v));
            }
            ChromeEvent {
                name: &s.name,
                cat: s.level.to_string(),
                ph: "X",
                ts: s.start_ns as f64 / 1e3,
                dur: s.duration_ns() as f64 / 1e3,
                pid: s.trace_id.0,
                tid: s.level.rank() as u64,
                args,
            }
        })
        .collect();
    serde_json::to_string(&serde_json::json!({ "traceEvents": events }))
        .expect("chrome trace serialization cannot fail")
}

/// Serializes a correlated trace to Brendan-Gregg folded-stack format, one
/// line per leaf span: `model_prediction;conv2d/Conv2D;volta_scudnn 1234`
/// (weight = self time in microseconds). Feed to `flamegraph.pl` or
/// speedscope.
pub fn to_folded_stacks(trace: &crate::correlate::CorrelatedTrace) -> String {
    use std::collections::HashMap;
    let mut out = String::new();
    use std::fmt::Write;
    // index spans and children
    let mut children: HashMap<crate::span::SpanId, Vec<usize>> = HashMap::new();
    let mut roots = Vec::new();
    for (i, s) in trace.spans.iter().enumerate() {
        match s.parent {
            Some(p) if trace.find(p).is_some() => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    fn emit(
        trace: &crate::correlate::CorrelatedTrace,
        children: &HashMap<crate::span::SpanId, Vec<usize>>,
        idx: usize,
        stack: &mut Vec<String>,
        out: &mut String,
    ) {
        let span = &trace.spans[idx].span;
        stack.push(span.name.replace([';', ' '], "_"));
        let kids = children.get(&span.id).cloned().unwrap_or_default();
        let child_time: u64 = kids
            .iter()
            .map(|&k| trace.spans[k].span.duration_ns())
            .sum();
        let self_us = span.duration_ns().saturating_sub(child_time) / 1_000;
        if self_us > 0 || kids.is_empty() {
            use std::fmt::Write;
            let _ = writeln!(out, "{} {}", stack.join(";"), self_us.max(1));
        }
        for k in kids {
            emit(trace, children, k, stack, out);
        }
        stack.pop();
    }
    let mut stack = Vec::new();
    for r in roots {
        emit(trace, &children, r, &mut stack, &mut out);
    }
    let _ = write!(out, "");
    out
}

/// Serializes the raw spans to JSON (offline-analysis input format).
pub fn to_span_json(trace: &Trace) -> String {
    serde_json::to_string(trace.spans()).expect("span serialization cannot fail")
}

/// Deserializes spans previously written by [`to_span_json`]; this is the
/// offline conversion path (§III-A: conversion "can be performed off-line by
/// processing the output of the profiler").
pub fn from_span_json(json: &str) -> Result<Trace, serde_json::Error> {
    let spans: Vec<Span> = serde_json::from_str(json)?;
    Ok(Trace::from_spans(spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuilder, StackLevel, TraceId};

    fn sample_trace() -> Trace {
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .tag("batch_size", 256u64)
            .finish(1_000_000);
        let pid = model.id;
        let layer = SpanBuilder::new("conv2d/Conv2D", StackLevel::Layer, TraceId(1))
            .start(1_000)
            .parent(pid)
            .tag("occ", 0.5f64)
            .finish(500_000);
        Trace::from_spans(vec![model, layer])
    }

    #[test]
    fn chrome_trace_shape() {
        let json = to_chrome_trace(&sample_trace());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["cat"], "model");
        assert_eq!(events[1]["cat"], "layer");
        assert_eq!(events[1]["tid"], 2); // layer rank
        assert!(events[1]["args"]["parent"].is_u64());
        // ns -> µs conversion
        assert_eq!(events[0]["dur"].as_f64().unwrap(), 1_000.0);
    }

    #[test]
    fn span_json_roundtrip() {
        let trace = sample_trace();
        let json = to_span_json(&trace);
        let back = from_span_json(&json).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.spans()[0].name, "predict");
        assert_eq!(back.spans()[1].parent, trace.spans()[1].parent);
        assert_eq!(
            back.spans()[0].tag("batch_size").unwrap().as_u64(),
            Some(256)
        );
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_span_json("not json").is_err());
    }

    #[test]
    fn folded_stacks_weight_self_time() {
        use crate::correlate::reconstruct_parents;
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .finish(10_000_000); // 10 ms
        let layer = SpanBuilder::new("conv", StackLevel::Layer, TraceId(1))
            .start(1_000_000)
            .finish(9_000_000); // 8 ms
        let kernel = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(2_000_000)
            .finish(8_000_000); // 6 ms
        let c = reconstruct_parents(&Trace::from_spans(vec![model, layer, kernel]));
        let folded = to_folded_stacks(&c);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3, "{folded}");
        assert!(lines.contains(&"predict 2000"), "{folded}"); // 10-8 ms self
        assert!(lines.contains(&"predict;conv 2000"), "{folded}");
        assert!(lines.contains(&"predict;conv;k 6000"), "{folded}");
    }

    #[test]
    fn folded_stacks_sanitize_names() {
        use crate::correlate::reconstruct_parents;
        let s = SpanBuilder::new("has space;semi", StackLevel::Model, TraceId(1))
            .start(0)
            .finish(2_000);
        let c = reconstruct_parents(&Trace::from_spans(vec![s]));
        let folded = to_folded_stacks(&c);
        assert!(folded.starts_with("has_space_semi "), "{folded}");
    }
}
