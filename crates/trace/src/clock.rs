//! Virtual time source shared by every component of the simulated stack.
//!
//! The entire reproduction runs on *virtual* nanoseconds instead of wall
//! time: the CPU (framework) side advances the clock as it dispatches work
//! and the GPU simulator schedules kernels on per-stream timelines derived
//! from it. Determinism is what lets the test suite assert exact latencies
//! and lets the multi-run analysis pipeline (trimmed means across runs,
//! §III-D) be exercised reproducibly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically non-decreasing virtual clock measured in nanoseconds.
///
/// Cloning a [`VirtualClock`] yields a handle onto the *same* underlying
/// timeline (the state is reference-counted), mirroring how every profiler in
/// a real deployment reads the same host clock.
///
/// ```
/// use xsp_trace::VirtualClock;
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), 0);
/// clock.advance(1_500);
/// assert_eq!(clock.now(), 1_500);
/// let alias = clock.clone();
/// alias.advance(500);
/// assert_eq!(clock.now(), 2_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start_ns`.
    pub fn starting_at(start_ns: u64) -> Self {
        Self {
            ns: Arc::new(AtomicU64::new(start_ns)),
        }
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Advances the clock by `delta_ns` and returns the new time.
    #[inline]
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.ns.fetch_add(delta_ns, Ordering::SeqCst) + delta_ns
    }

    /// Moves the clock forward to `target_ns` if it is in the future;
    /// otherwise leaves it unchanged. Returns the (possibly updated) time.
    ///
    /// Used when the CPU blocks on device synchronization: the host timeline
    /// jumps to the completion time of the last GPU activity.
    pub fn advance_to(&self, target_ns: u64) -> u64 {
        let mut cur = self.ns.load(Ordering::SeqCst);
        while cur < target_ns {
            match self
                .ns
                .compare_exchange(cur, target_ns, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return target_ns,
                Err(observed) => cur = observed,
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0);
    }

    #[test]
    fn starting_at_sets_origin() {
        assert_eq!(VirtualClock::starting_at(42).now(), 42);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = VirtualClock::new();
        c.advance(100);
        assert_eq!(c.advance_to(50), 100, "must not rewind");
        assert_eq!(c.advance_to(250), 250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn clones_share_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(7);
        b.advance(3);
        assert_eq!(a.now(), 10);
        assert_eq!(b.now(), 10);
    }

    #[test]
    fn concurrent_advances_are_all_counted() {
        let c = VirtualClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), 8000);
    }
}
