//! # xsp-trace — distributed-tracing substrate for across-stack profiling
//!
//! XSP ("across-stack profiling", Li & Dakkak et al., IPDPS 2020) observes
//! that aggregating profiles from disjoint profilers — model-level timers,
//! framework layer profilers, GPU kernel profilers — is structurally the same
//! problem distributed tracing solves for micro-services. This crate provides
//! the tracing machinery the paper's design rests on:
//!
//! * [`Span`]s — timed operations with unique ids, stack-level tags, key/value
//!   annotations and optional parent references (§III-A).
//! * [`Tracer`]s — per-profiler span publishers; spans flow over a channel to
//!   a [`TracingServer`] that aggregates them into a single timeline
//!   [`Trace`] (§III-A).
//! * A [`CorrelationEngine`] that reconstructs missing parent-child
//!   relations between spans produced by profilers that cannot see each
//!   other (§III-A: "checking for interval set inclusion"), probing
//!   lazily built per-level [`IntervalTree`]s over an indexed span store.
//! * Async-operation correlation: a *launch* span and an *execution* span
//!   linked by a correlation identifier (§III-A/§III-B-3).
//! * Trimmed-mean statistics used by the automated analysis pipeline to
//!   summarize values across evaluation runs (§III-D).
//! * Export to Chrome trace-event JSON, folded stacks and span JSON —
//!   either as materialized `String`s ([`export`]) or incrementally over
//!   any `io::Write` with constant peak memory ([`export::stream`]).
//!
//! The crate is deliberately independent of what is being profiled: the GPU
//! simulator, the framework substrate and XSP itself all publish plain
//! [`Span`]s.

#![warn(missing_docs)]

pub mod clock;
pub mod correlate;
pub mod export;
pub mod fxhash;
pub mod hierarchy;
pub mod intern;
pub mod interval;
pub mod server;
pub mod span;
pub mod stats;
pub mod store;
pub mod tracer;

pub use clock::VirtualClock;
pub use correlate::{
    correlate_async_spans, reconstruct_parents, AmbiguityReport, CorrelatedTrace,
    CorrelationEngine, StoreCorrelation, StoreCorrelationCache,
};
pub use hierarchy::SpanTree;
pub use intern::{NameTable, Symbol};
pub use interval::IntervalTree;
pub use server::{Trace, TracingServer};
pub use span::{with_span_id_scope, Span, SpanBuilder, SpanId, StackLevel, TagValue, TraceId};
pub use stats::{trimmed_mean, Summary};
pub use store::{SpanStore, SpanView, TagRef};
pub use tracer::{ChannelTracer, NoopTracer, SpanBuffer, Tracer};
