//! Tracers: per-profiler span publishers (§III-A step 1: "each profiler
//! within a stack is turned into a tracer").
//!
//! Every profiler — the model-level timer, the framework layer profiler, the
//! CUPTI adapter — holds a [`Tracer`] and publishes finished spans through
//! it. Spans travel over a lock-free channel to the [`crate::TracingServer`],
//! so publication is asynchronous and adds negligible overhead to the
//! profiled application (§III-C: "creating spans online adds negligible
//! overhead per span"). Tracers can be enabled and disabled at runtime, which
//! is the mechanism behind leveled experimentation.

use crate::span::Span;
use crossbeam_channel::Sender;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A destination for finished spans.
pub trait Tracer: Send + Sync {
    /// Publishes a finished span. Implementations must not block on the
    /// consumer.
    fn report(&self, span: Span);

    /// Whether the tracer currently forwards spans. Disabled tracers drop
    /// spans silently, letting callers skip span construction entirely.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A tracer that forwards spans to a tracing server over a channel.
///
/// The channel is unbounded: the profiled application never blocks on the
/// aggregation side. An atomic enable flag supports runtime toggling
/// (§III-A: "tracers can be enabled or disabled at runtime").
#[derive(Clone)]
pub struct ChannelTracer {
    name: &'static str,
    tx: Sender<Span>,
    enabled: Arc<AtomicBool>,
}

impl ChannelTracer {
    /// Creates a tracer named `name` publishing into `tx`.
    pub fn new(name: &'static str, tx: Sender<Span>) -> Self {
        Self {
            name,
            tx,
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// The tracer's name (identifies the producing profiler).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Enables or disables the tracer.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }
}

impl Tracer for ChannelTracer {
    fn report(&self, span: Span) {
        if self.is_enabled() {
            // The server may already have shut down during teardown; spans
            // reported after that point are intentionally dropped.
            let _ = self.tx.send(span);
        }
    }

    fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }
}

/// A tracer that drops every span; used when a stack level's profiling is
/// turned off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn report(&self, _span: Span) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuilder, StackLevel, TraceId};

    fn mk_span(name: &str) -> Span {
        SpanBuilder::new(name, StackLevel::Model, TraceId(0))
            .start(0)
            .finish(1)
    }

    #[test]
    fn channel_tracer_forwards_spans() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let tracer = ChannelTracer::new("test", tx);
        tracer.report(mk_span("a"));
        tracer.report(mk_span("b"));
        let got: Vec<_> = rx.try_iter().map(|s| s.name).collect();
        assert_eq!(got, vec!["a", "b"]);
    }

    #[test]
    fn disabled_tracer_drops_spans() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let tracer = ChannelTracer::new("test", tx);
        tracer.set_enabled(false);
        assert!(!tracer.is_enabled());
        tracer.report(mk_span("dropped"));
        assert!(rx.try_iter().next().is_none());
        tracer.set_enabled(true);
        tracer.report(mk_span("kept"));
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn clones_share_enable_flag() {
        let (tx, _rx) = crossbeam_channel::unbounded();
        let a = ChannelTracer::new("t", tx);
        let b = a.clone();
        b.set_enabled(false);
        assert!(!a.is_enabled());
    }

    #[test]
    fn report_after_receiver_drop_is_silent() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let tracer = ChannelTracer::new("t", tx);
        drop(rx);
        tracer.report(mk_span("late")); // must not panic
    }

    #[test]
    fn noop_tracer_is_disabled() {
        assert!(!NoopTracer.is_enabled());
        NoopTracer.report(mk_span("x"));
    }
}
