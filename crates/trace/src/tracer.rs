//! Tracers: per-profiler span publishers (§III-A step 1: "each profiler
//! within a stack is turned into a tracer").
//!
//! Every profiler — the model-level timer, the framework layer profiler, the
//! CUPTI adapter — holds a [`Tracer`] and publishes finished spans through
//! it. Spans travel over a lock-free channel to the [`crate::TracingServer`],
//! so publication is asynchronous and adds negligible overhead to the
//! profiled application (§III-C: "creating spans online adds negligible
//! overhead per span"). Tracers can be enabled and disabled at runtime, which
//! is the mechanism behind leveled experimentation.
//!
//! The channel carries *batches* of spans. A plain [`ChannelTracer`]
//! publishes singleton batches; a [`SpanBuffer`] accumulates spans locally
//! and flushes them as one atomic batch, so spans produced by one worker
//! arrive at the server contiguously even when many workers publish to the
//! same server concurrently. That contiguity — not a post-hoc re-sort of a
//! shared buffer — is what keeps concurrent trace assembly deterministic.

use crate::span::Span;
use crossbeam_channel::Sender;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A destination for finished spans.
pub trait Tracer: Send + Sync {
    /// Publishes a finished span. Implementations must not block on the
    /// consumer.
    fn report(&self, span: Span);

    /// Whether the tracer currently forwards spans. Disabled tracers drop
    /// spans silently, letting callers skip span construction entirely.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A tracer that forwards spans to a tracing server over a channel.
///
/// The channel is unbounded: the profiled application never blocks on the
/// aggregation side. An atomic enable flag supports runtime toggling
/// (§III-A: "tracers can be enabled or disabled at runtime").
#[derive(Clone)]
pub struct ChannelTracer {
    name: &'static str,
    tx: Sender<Vec<Span>>,
    enabled: Arc<AtomicBool>,
}

impl ChannelTracer {
    /// Creates a tracer named `name` publishing into `tx`.
    pub fn new(name: &'static str, tx: Sender<Vec<Span>>) -> Self {
        Self {
            name,
            tx,
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// The tracer's name (identifies the producing profiler).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Enables or disables the tracer.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Publishes a batch of spans atomically: the batch arrives at the
    /// server contiguously, with no spans from other producers interleaved.
    pub fn report_batch(&self, spans: Vec<Span>) {
        if !spans.is_empty() && self.is_enabled() {
            // The server may already have shut down during teardown; spans
            // reported after that point are intentionally dropped.
            let _ = self.tx.send(spans);
        }
    }
}

impl Tracer for ChannelTracer {
    fn report(&self, span: Span) {
        if self.is_enabled() {
            let _ = self.tx.send(vec![span]);
        }
    }

    fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }
}

/// A buffering tracer: spans accumulate locally and reach the server only on
/// [`SpanBuffer::flush`] (or drop), as one atomic batch.
///
/// This is the per-worker publication path of the parallel evaluation
/// engine. Each worker buffers the spans of the run it is executing and
/// flushes them in one piece, so a server shared by many workers receives
/// every run's spans contiguously — trace assembly then depends only on
/// trace ids, never on cross-thread arrival interleaving.
pub struct SpanBuffer {
    inner: ChannelTracer,
    buf: Mutex<Vec<Span>>,
}

impl SpanBuffer {
    /// Creates a buffer that flushes into `inner`.
    pub fn new(inner: ChannelTracer) -> Self {
        Self {
            inner,
            buf: Mutex::new(Vec::new()),
        }
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the buffer holds no spans.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Sends every buffered span to the server as one atomic batch and
    /// returns how many were flushed.
    ///
    /// The enable flag gates *buffering* ([`Tracer::report`]); spans that
    /// were legitimately recorded while the tracer was enabled are always
    /// delivered, even if the tracer has been disabled since.
    pub fn flush(&self) -> usize {
        let spans = std::mem::take(&mut *self.buf.lock());
        let n = spans.len();
        if n > 0 {
            // Deliberately bypasses report_batch's enable check (same
            // module): the gate already ran at report() time.
            let _ = self.inner.tx.send(spans);
        }
        n
    }
}

impl Tracer for SpanBuffer {
    fn report(&self, span: Span) {
        if self.inner.is_enabled() {
            self.buf.lock().push(span);
        }
    }

    fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }
}

impl Drop for SpanBuffer {
    fn drop(&mut self) {
        // Buffered spans must not be lost if the caller forgets to flush.
        self.flush();
    }
}

/// A tracer that drops every span; used when a stack level's profiling is
/// turned off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn report(&self, _span: Span) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuilder, StackLevel, TraceId};

    fn mk_span(name: &str) -> Span {
        SpanBuilder::new(name, StackLevel::Model, TraceId(0))
            .start(0)
            .finish(1)
    }

    #[test]
    fn channel_tracer_forwards_spans() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let tracer = ChannelTracer::new("test", tx);
        tracer.report(mk_span("a"));
        tracer.report(mk_span("b"));
        let got: Vec<_> = rx.try_iter().flatten().map(|s| s.name).collect();
        assert_eq!(got, vec!["a", "b"]);
    }

    #[test]
    fn disabled_tracer_drops_spans() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let tracer = ChannelTracer::new("test", tx);
        tracer.set_enabled(false);
        assert!(!tracer.is_enabled());
        tracer.report(mk_span("dropped"));
        assert!(rx.try_iter().next().is_none());
        tracer.set_enabled(true);
        tracer.report(mk_span("kept"));
        assert_eq!(rx.try_iter().flatten().count(), 1);
    }

    #[test]
    fn clones_share_enable_flag() {
        let (tx, _rx) = crossbeam_channel::unbounded();
        let a = ChannelTracer::new("t", tx);
        let b = a.clone();
        b.set_enabled(false);
        assert!(!a.is_enabled());
    }

    #[test]
    fn report_after_receiver_drop_is_silent() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let tracer = ChannelTracer::new("t", tx);
        drop(rx);
        tracer.report(mk_span("late")); // must not panic
    }

    #[test]
    fn batch_arrives_as_one_message() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let tracer = ChannelTracer::new("t", tx);
        tracer.report_batch(vec![mk_span("a"), mk_span("b")]);
        tracer.report_batch(Vec::new()); // empty batches are elided
        let batches: Vec<Vec<Span>> = rx.try_iter().collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2);
    }

    #[test]
    fn span_buffer_holds_until_flush() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let buffer = SpanBuffer::new(ChannelTracer::new("t", tx));
        buffer.report(mk_span("a"));
        buffer.report(mk_span("b"));
        assert_eq!(buffer.len(), 2);
        assert!(rx.try_iter().next().is_none(), "nothing sent before flush");
        assert_eq!(buffer.flush(), 2);
        assert!(buffer.is_empty());
        let batches: Vec<Vec<Span>> = rx.try_iter().collect();
        assert_eq!(batches.len(), 1, "flush is one atomic batch");
        assert_eq!(batches[0][1].name, "b");
    }

    #[test]
    fn span_buffer_flushes_on_drop() {
        let (tx, rx) = crossbeam_channel::unbounded();
        {
            let buffer = SpanBuffer::new(ChannelTracer::new("t", tx));
            buffer.report(mk_span("late"));
        }
        assert_eq!(rx.try_iter().flatten().count(), 1);
    }

    #[test]
    fn span_buffer_respects_enable_flag() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let inner = ChannelTracer::new("t", tx);
        inner.set_enabled(false);
        let buffer = SpanBuffer::new(inner);
        assert!(!buffer.is_enabled());
        buffer.report(mk_span("dropped"));
        assert_eq!(buffer.flush(), 0);
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn span_buffer_flush_delivers_despite_late_disable() {
        // Enable gating happens at report time; disabling the tracer after
        // spans were buffered must not swallow them on flush.
        let (tx, rx) = crossbeam_channel::unbounded();
        let inner = ChannelTracer::new("t", tx);
        let buffer = SpanBuffer::new(inner.clone());
        buffer.report(mk_span("recorded_while_enabled"));
        inner.set_enabled(false);
        assert_eq!(buffer.flush(), 1);
        assert_eq!(rx.try_iter().flatten().count(), 1);
    }

    #[test]
    fn noop_tracer_is_disabled() {
        assert!(!NoopTracer.is_enabled());
        NoopTracer.report(mk_span("x"));
    }
}
