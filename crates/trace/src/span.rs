//! Spans: the unit of profiled work in the across-stack timeline (§III-A).
//!
//! Each profiled event — a model-prediction step, a framework layer, a CUDA
//! API call, a GPU kernel execution — becomes one [`Span`]. A span carries a
//! unique identifier, start/end timestamps on the shared virtual timeline,
//! the HW/SW [`StackLevel`] it was captured at, user-defined tags and an
//! optional parent reference. Parent references known at creation time (e.g.
//! layer → model) are set directly; the rest are reconstructed offline (see
//! [`crate::correlate`]).

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique span identifier.
///
/// Ids are unique within their allocation scope: by default a process-global
/// counter, or — inside [`with_span_id_scope`] — a deterministic per-scope
/// sequence that makes id assignment independent of what other threads are
/// doing. The latter is what lets a parallel evaluation engine produce
/// byte-identical traces regardless of worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanId(pub u64);

/// Identifier of the timeline trace a span belongs to (one trace per
/// evaluation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceId(pub u64);

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of `(scope key, next local counter)` pushed by
    /// [`with_span_id_scope`]; the innermost scope wins.
    static ID_SCOPES: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Scope keys occupy the high id bits (offset by 1 so scoped ids never
/// collide with the low process-global range); counters the low 32 bits.
const SCOPE_KEY_BITS: u64 = 31;
const SCOPE_COUNTER_BITS: u64 = 32;

/// Runs `f` with span ids drawn from a deterministic sequence private to
/// `scope` instead of the process-global counter.
///
/// Every execution of a region under the same scope key yields the same id
/// sequence, no matter which thread runs it or what runs concurrently —
/// the property that makes parallel evaluation byte-identical to serial
/// evaluation. Scopes nest (the innermost wins) and are thread-local: the
/// caller must pick scope keys that are unique among traces it intends to
/// merge, since two identical keys replay the same id sequence. Scope keys
/// are truncated to 31 bits and each scope can allocate 2³² ids.
///
/// ```
/// use xsp_trace::span::{with_span_id_scope, SpanId};
/// let a = with_span_id_scope(7, || (SpanId::next(), SpanId::next()));
/// let b = with_span_id_scope(7, || (SpanId::next(), SpanId::next()));
/// assert_eq!(a, b, "same scope key replays the same id sequence");
/// assert_ne!(a.0, with_span_id_scope(8, SpanId::next));
/// ```
pub fn with_span_id_scope<R>(scope: u64, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            ID_SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    ID_SCOPES.with(|s| s.borrow_mut().push((scope, 0)));
    let _guard = Guard;
    f()
}

impl SpanId {
    /// Allocates a fresh span id: scope-deterministic inside
    /// [`with_span_id_scope`], process-unique (global counter) otherwise.
    pub fn next() -> Self {
        let scoped = ID_SCOPES.with(|s| {
            let mut stack = s.borrow_mut();
            stack.last_mut().map(|(scope, counter)| {
                let key = (*scope & ((1 << SCOPE_KEY_BITS) - 1)) + 1;
                let id = (key << SCOPE_COUNTER_BITS) | (*counter & ((1 << SCOPE_COUNTER_BITS) - 1));
                *counter += 1;
                id
            })
        });
        match scoped {
            Some(id) => SpanId(id),
            None => SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)),
        }
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The level within the HW/SW stack a span was captured at (§III-A step 3:
/// "each span is tagged with its stack level").
///
/// The paper numbers levels from 1 (model) downwards; `Application` (level 0)
/// and `Library` (between layer and kernel) exist for the extensibility story
/// of §III-E — e.g. profiling whole applications or cuDNN API calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StackLevel {
    /// Whole-application events (distributed pipelines, multi-model apps).
    Application,
    /// Model-level events: pre-processing, model prediction, post-processing.
    Model,
    /// Framework layer-level events (Conv2D, BN, Relu, ...).
    Layer,
    /// System-library-level events (cuDNN/cuBLAS API calls).
    Library,
    /// GPU kernel-level events: CUDA API calls, kernel executions, memcpy.
    Kernel,
}

impl StackLevel {
    /// Numeric rank; smaller is "higher" in the stack. Model = 1 as in the
    /// paper ("level 1 is the model level").
    pub fn rank(self) -> u8 {
        match self {
            StackLevel::Application => 0,
            StackLevel::Model => 1,
            StackLevel::Layer => 2,
            StackLevel::Library => 3,
            StackLevel::Kernel => 4,
        }
    }

    /// All levels ordered top (Application) to bottom (Kernel).
    pub const ALL: [StackLevel; 5] = [
        StackLevel::Application,
        StackLevel::Model,
        StackLevel::Layer,
        StackLevel::Library,
        StackLevel::Kernel,
    ];
}

impl fmt::Display for StackLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StackLevel::Application => "application",
            StackLevel::Model => "model",
            StackLevel::Layer => "layer",
            StackLevel::Library => "library",
            StackLevel::Kernel => "kernel",
        };
        f.write_str(s)
    }
}

/// A user-defined span annotation value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TagValue {
    /// String tag.
    Str(String),
    /// Signed integer tag.
    I64(i64),
    /// Unsigned integer tag (kernel counters, byte counts).
    U64(u64),
    /// Floating-point tag (occupancy, ratios).
    F64(f64),
    /// Boolean tag.
    Bool(bool),
}

impl TagValue {
    /// Returns the tag as `u64` when it holds an unsigned or non-negative
    /// signed integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TagValue::U64(v) => Some(*v),
            TagValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns the tag as `f64` when it holds any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TagValue::F64(v) => Some(*v),
            TagValue::I64(v) => Some(*v as f64),
            TagValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the tag as `&str` when it holds a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TagValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for TagValue {
    fn from(v: &str) -> Self {
        TagValue::Str(v.to_owned())
    }
}
impl From<String> for TagValue {
    fn from(v: String) -> Self {
        TagValue::Str(v)
    }
}
impl From<i64> for TagValue {
    fn from(v: i64) -> Self {
        TagValue::I64(v)
    }
}
impl From<u64> for TagValue {
    fn from(v: u64) -> Self {
        TagValue::U64(v)
    }
}
impl From<f64> for TagValue {
    fn from(v: f64) -> Self {
        TagValue::F64(v)
    }
}
impl From<bool> for TagValue {
    fn from(v: bool) -> Self {
        TagValue::Bool(v)
    }
}

/// A timestamped log entry attached to a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEvent {
    /// Virtual time the event occurred at.
    pub at_ns: u64,
    /// Free-form message.
    pub message: String,
}

/// Well-known tag keys used across the stack.
pub mod tag_keys {
    /// Correlation identifier linking an async launch span to its execution
    /// span (CUPTI `correlation_id`).
    pub const CORRELATION_ID: &str = "correlation_id";
    /// Marks the span as the *launch* half of an async operation.
    pub const ASYNC_LAUNCH: &str = "async_launch";
    /// Marks the span as the *execution* half of an async operation.
    pub const ASYNC_EXECUTION: &str = "async_execution";
    /// Index of the framework layer a span describes.
    pub const LAYER_INDEX: &str = "layer_index";
    /// Framework layer type name (`Conv2D`, `Relu`, ...).
    pub const LAYER_TYPE: &str = "layer_type";
    /// Output shape of a layer, rendered `⟨n, c, h, w⟩`-style.
    pub const LAYER_SHAPE: &str = "layer_shape";
    /// Bytes allocated by the framework on behalf of a layer.
    pub const ALLOC_BYTES: &str = "alloc_bytes";
    /// Single-precision flop count metric (`flop_count_sp`).
    pub const FLOP_COUNT_SP: &str = "flop_count_sp";
    /// DRAM read bytes metric (`dram_read_bytes`).
    pub const DRAM_READ_BYTES: &str = "dram_read_bytes";
    /// DRAM write bytes metric (`dram_write_bytes`).
    pub const DRAM_WRITE_BYTES: &str = "dram_write_bytes";
    /// Achieved-occupancy metric, in `[0, 1]`.
    pub const ACHIEVED_OCCUPANCY: &str = "achieved_occupancy";
    /// CUDA grid dimensions, rendered `[x,y,z]`.
    pub const GRID: &str = "grid";
    /// CUDA block dimensions, rendered `[x,y,z]`.
    pub const BLOCK: &str = "block";
    /// CUDA stream the activity ran on.
    pub const STREAM: &str = "stream";
    /// Name of the profiler/tracer that produced the span.
    pub const TRACER: &str = "tracer";
    /// Batch size of the evaluation that produced the span.
    pub const BATCH_SIZE: &str = "batch_size";
}

/// A timed operation captured by some profiler in the stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Unique identifier (used as the span's reference).
    pub id: SpanId,
    /// Trace (evaluation run) this span belongs to.
    pub trace_id: TraceId,
    /// Operation name ("model_prediction", "conv2d_48/Conv2D",
    /// "volta_scudnn_128x64_relu_interior_nn_v1", ...).
    pub name: String,
    /// Stack level the producing profiler lives at.
    pub level: StackLevel,
    /// Start timestamp, virtual ns.
    pub start_ns: u64,
    /// End timestamp, virtual ns. Invariant: `end_ns >= start_ns`.
    pub end_ns: u64,
    /// Parent reference when known at creation time.
    pub parent: Option<SpanId>,
    /// User-defined key/value annotations.
    pub tags: Vec<(String, TagValue)>,
    /// Timestamped log entries.
    pub logs: Vec<LogEvent>,
}

impl Span {
    /// Duration in nanoseconds.
    #[inline]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Duration in milliseconds.
    #[inline]
    pub fn duration_ms(&self) -> f64 {
        self.duration_ns() as f64 / 1e6
    }

    /// Looks up a tag by key.
    pub fn tag(&self, key: &str) -> Option<&TagValue> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether this span is the launch half of an async operation.
    pub fn is_async_launch(&self) -> bool {
        matches!(self.tag(tag_keys::ASYNC_LAUNCH), Some(TagValue::Bool(true)))
    }

    /// Whether this span is the execution half of an async operation.
    pub fn is_async_execution(&self) -> bool {
        matches!(
            self.tag(tag_keys::ASYNC_EXECUTION),
            Some(TagValue::Bool(true))
        )
    }

    /// The correlation id, if the span participates in async correlation.
    pub fn correlation_id(&self) -> Option<u64> {
        self.tag(tag_keys::CORRELATION_ID).and_then(|v| v.as_u64())
    }

    /// Whether this span's interval fully contains `other`'s
    /// (`start ≤ other.start` and `other.end ≤ end`).
    pub fn contains(&self, other: &Span) -> bool {
        self.start_ns <= other.start_ns && other.end_ns <= self.end_ns
    }
}

/// Builder for [`Span`]s; the only way user code creates spans.
///
/// ```
/// use xsp_trace::{SpanBuilder, StackLevel, TraceId};
/// let span = SpanBuilder::new("model_prediction", StackLevel::Model, TraceId(1))
///     .start(100)
///     .tag("batch_size", 256u64)
///     .finish(500);
/// assert_eq!(span.duration_ns(), 400);
/// ```
#[derive(Debug)]
pub struct SpanBuilder {
    span: Span,
}

impl SpanBuilder {
    /// Starts building a span with the given name, level and trace.
    pub fn new(name: impl Into<String>, level: StackLevel, trace_id: TraceId) -> Self {
        Self {
            span: Span {
                id: SpanId::next(),
                trace_id,
                name: name.into(),
                level,
                start_ns: 0,
                end_ns: 0,
                parent: None,
                tags: Vec::new(),
                logs: Vec::new(),
            },
        }
    }

    /// Sets the start timestamp.
    pub fn start(mut self, at_ns: u64) -> Self {
        self.span.start_ns = at_ns;
        self
    }

    /// Sets the parent reference.
    pub fn parent(mut self, parent: SpanId) -> Self {
        self.span.parent = Some(parent);
        self
    }

    /// Sets the parent reference from an `Option`.
    pub fn maybe_parent(mut self, parent: Option<SpanId>) -> Self {
        self.span.parent = parent;
        self
    }

    /// Attaches a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<TagValue>) -> Self {
        self.span.tags.push((key.into(), value.into()));
        self
    }

    /// Appends a log event.
    pub fn log(mut self, at_ns: u64, message: impl Into<String>) -> Self {
        self.span.logs.push(LogEvent {
            at_ns,
            message: message.into(),
        });
        self
    }

    /// The id the finished span will carry (useful for pre-registering
    /// children).
    pub fn id(&self) -> SpanId {
        self.span.id
    }

    /// Finishes the span at `end_ns`.
    ///
    /// # Panics
    /// Panics if `end_ns` precedes the start timestamp.
    pub fn finish(mut self, end_ns: u64) -> Span {
        assert!(
            end_ns >= self.span.start_ns,
            "span '{}' would end ({end_ns}) before it starts ({})",
            self.span.name,
            self.span.start_ns
        );
        self.span.end_ns = end_ns;
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(name: &str, level: StackLevel, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, level, TraceId(0)).start(s).finish(e)
    }

    #[test]
    fn span_ids_are_unique() {
        let a = mk("a", StackLevel::Model, 0, 1);
        let b = mk("b", StackLevel::Model, 0, 1);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn scoped_ids_are_deterministic_across_threads() {
        let on_main = with_span_id_scope(42, || vec![SpanId::next(), SpanId::next()]);
        let on_thread =
            std::thread::spawn(|| with_span_id_scope(42, || vec![SpanId::next(), SpanId::next()]))
                .join()
                .unwrap();
        assert_eq!(on_main, on_thread);
    }

    #[test]
    fn scoped_ids_do_not_collide_with_global_ids() {
        let global = SpanId::next();
        let scoped = with_span_id_scope(0, SpanId::next);
        assert!(
            scoped.0 >= 1 << 32,
            "scoped ids live above the global range"
        );
        assert!(global.0 < 1 << 32);
    }

    #[test]
    fn scopes_nest_and_restore() {
        with_span_id_scope(1, || {
            let outer_first = SpanId::next();
            let inner = with_span_id_scope(2, SpanId::next);
            let outer_second = SpanId::next();
            assert_eq!(outer_second.0, outer_first.0 + 1, "outer counter resumes");
            assert_ne!(inner.0 >> 32, outer_first.0 >> 32, "inner scope differs");
        });
        // after the scope exits, allocation falls back to the global counter
        assert!(SpanId::next().0 < 1 << 32);
    }

    #[test]
    fn duration_is_end_minus_start() {
        let s = mk("x", StackLevel::Layer, 10, 250);
        assert_eq!(s.duration_ns(), 240);
        assert!((s.duration_ms() - 240.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "would end")]
    fn finish_before_start_panics() {
        let _ = SpanBuilder::new("bad", StackLevel::Model, TraceId(0))
            .start(100)
            .finish(50);
    }

    #[test]
    fn containment() {
        let outer = mk("outer", StackLevel::Layer, 0, 100);
        let inner = mk("inner", StackLevel::Kernel, 10, 90);
        let crossing = mk("crossing", StackLevel::Kernel, 50, 150);
        assert!(outer.contains(&inner));
        assert!(!outer.contains(&crossing));
        assert!(outer.contains(&outer.clone()));
    }

    #[test]
    fn tags_roundtrip() {
        let s = SpanBuilder::new("k", StackLevel::Kernel, TraceId(0))
            .start(0)
            .tag(tag_keys::CORRELATION_ID, 42u64)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .tag("note", "hello")
            .tag("occ", 0.5f64)
            .finish(1);
        assert_eq!(s.correlation_id(), Some(42));
        assert!(s.is_async_launch());
        assert!(!s.is_async_execution());
        assert_eq!(s.tag("note").unwrap().as_str(), Some("hello"));
        assert_eq!(s.tag("occ").unwrap().as_f64(), Some(0.5));
        assert_eq!(s.tag("missing"), None);
    }

    #[test]
    fn level_ranks_are_ordered_top_down() {
        let ranks: Vec<u8> = StackLevel::ALL.iter().map(|l| l.rank()).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted);
        assert_eq!(StackLevel::Model.rank(), 1, "paper: level 1 is the model");
    }

    #[test]
    fn tag_value_conversions() {
        assert_eq!(TagValue::from(-3i64).as_u64(), None);
        assert_eq!(TagValue::from(3i64).as_u64(), Some(3));
        assert_eq!(TagValue::from(3u64).as_f64(), Some(3.0));
        assert_eq!(TagValue::from(true).as_f64(), None);
        assert_eq!(TagValue::from("s").as_str(), Some("s"));
    }

    #[test]
    fn logs_are_recorded() {
        let s = SpanBuilder::new("op", StackLevel::Model, TraceId(0))
            .start(0)
            .log(5, "checkpoint")
            .finish(10);
        assert_eq!(s.logs.len(), 1);
        assert_eq!(s.logs[0].at_ns, 5);
    }
}
