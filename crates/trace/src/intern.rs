//! String interning for the span hot path.
//!
//! Span and kernel names repeat massively — a 100k-span run of a 50-layer
//! model carries a few dozen *distinct* strings. The owned `String` per
//! [`crate::span::Span`] is exactly the allocation the arena/SoA store
//! ([`crate::store::SpanStore`]) exists to avoid, so names, tag keys and
//! string tag values all become [`Symbol`]s: `u32` handles into a
//! [`NameTable`].
//!
//! Symbols are assigned in **first-appearance order**. Given a
//! deterministic span order — which the engine's byte-identity contract
//! (serial drain == parallel drain) already guarantees — the table contents
//! and every symbol id are deterministic too, and the `.xspb` binary
//! interchange (which serializes the table as inline name-definition
//! records) inherits byte-for-byte reproducibility. The interner
//! determinism test extends the Serial-vs-`Fixed(4)` contract to this
//! table.

use crate::fxhash::FxHashMap;

/// A handle to an interned string in a [`NameTable`].
///
/// Symbols are only meaningful relative to the table that produced them;
/// the `.xspb` reader re-interns on ingest precisely so symbols from a
/// foreign capture never leak into a local table unchecked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol's raw table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner: first-appearance order assigns dense
/// `u32` ids starting at 0.
///
/// ```
/// use xsp_trace::intern::NameTable;
/// let mut t = NameTable::new();
/// let a = t.intern("conv2d");
/// let b = t.intern("relu");
/// assert_eq!(t.intern("conv2d"), a, "re-interning is idempotent");
/// assert_eq!(t.resolve(b), "relu");
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol; a hit costs one hash lookup
    /// and no allocation.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.index.get(name) {
            return Symbol(id);
        }
        self.push_new(name.to_owned())
    }

    /// Interns an owned `name`, reusing the allocation on a miss.
    pub fn intern_owned(&mut self, name: String) -> Symbol {
        if let Some(&id) = self.index.get(name.as_str()) {
            return Symbol(id);
        }
        self.push_new(name)
    }

    fn push_new(&mut self, name: String) -> Symbol {
        let id = u32::try_from(self.names.len()).expect("name table exceeds u32 symbols");
        self.index.insert(name.clone(), id);
        self.names.push(name);
        Symbol(id)
    }

    /// Looks up a string without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).map(|&id| Symbol(id))
    }

    /// Resolves a symbol to its string. Panics on a symbol from another
    /// table (out of range); use [`NameTable::try_resolve`] for untrusted
    /// input.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Resolves a symbol, returning `None` when it is out of range.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.names.get(sym.index()).map(String::as_str)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates the interned strings in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_appearance_order_is_dense_from_zero() {
        let mut t = NameTable::new();
        assert_eq!(t.intern("a"), Symbol(0));
        assert_eq!(t.intern("b"), Symbol(1));
        assert_eq!(t.intern("a"), Symbol(0));
        assert_eq!(t.intern("c"), Symbol(2));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn owned_interning_matches_borrowed() {
        let mut t = NameTable::new();
        let a = t.intern("conv");
        assert_eq!(t.intern_owned("conv".to_owned()), a);
        assert_eq!(t.intern_owned("gemm".to_owned()), Symbol(1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = NameTable::new();
        assert_eq!(t.get("x"), None);
        assert!(t.is_empty());
        let x = t.intern("x");
        assert_eq!(t.get("x"), Some(x));
    }

    #[test]
    fn try_resolve_rejects_foreign_symbols() {
        let mut t = NameTable::new();
        t.intern("only");
        assert_eq!(t.try_resolve(Symbol(0)), Some("only"));
        assert_eq!(t.try_resolve(Symbol(1)), None);
    }

    #[test]
    fn same_insertion_order_means_same_symbols() {
        // The determinism contract the `.xspb` byte-identity test relies on:
        // identical intern sequences yield identical tables.
        let names = ["predict", "conv", "relu", "conv", "predict", "gemm"];
        let mut a = NameTable::new();
        let mut b = NameTable::new();
        let syms_a: Vec<Symbol> = names.iter().map(|n| a.intern(n)).collect();
        let syms_b: Vec<Symbol> = names.iter().map(|n| b.intern(n)).collect();
        assert_eq!(syms_a, syms_b);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }
}
