//! Statistical summaries used by the automated analysis pipeline.
//!
//! §III-D: "the pipeline takes traces from a user-defined number of
//! evaluations, correlates the information, and computes the trimmed mean
//! value (or other user-defined statistical summaries) for the same
//! performance value across runs."

/// Trimmed mean: drops `trim_fraction` of the samples from *each* tail
/// before averaging. `trim_fraction = 0.0` is the arithmetic mean;
/// `trim_fraction = 0.5` degenerates to the median-ish midpoint.
///
/// Returns `None` for an empty slice.
pub fn trimmed_mean(samples: &[f64], trim_fraction: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!(
        (0.0..=0.5).contains(&trim_fraction),
        "trim fraction {trim_fraction} outside [0, 0.5]"
    );
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let k = ((sorted.len() as f64) * trim_fraction).floor() as usize;
    let kept = &sorted[k..sorted.len() - k];
    if kept.is_empty() {
        // Trimming removed everything (tiny n, large trim): fall back to the
        // median midpoint so the summary stays defined.
        let mid = sorted.len() / 2;
        return Some(if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        });
    }
    Some(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Arithmetic mean; `None` when empty.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

/// Population standard deviation; `None` when empty.
pub fn std_dev(samples: &[f64]) -> Option<f64> {
    let m = mean(samples)?;
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64;
    Some(var.sqrt())
}

/// Linear-interpolation percentile, `p` in `[0, 100]`; `None` when empty.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile {p} outside [0, 100]"
    );
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let w = rank - lo as f64;
        Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// A full statistical summary of one performance value across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Trimmed mean (the analysis pipeline's default summary).
    pub trimmed_mean: f64,
    /// Median (p50).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes `samples` with the given trim fraction. Returns `None`
    /// when `samples` is empty.
    pub fn of(samples: &[f64], trim_fraction: f64) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n: samples.len(),
            min,
            max,
            mean: mean(samples)?,
            trimmed_mean: trimmed_mean(samples, trim_fraction)?,
            median: percentile(samples, 50.0)?,
            std_dev: std_dev(samples)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_drops_outliers() {
        let samples = [10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 1000.0, 0.0];
        // 10% trim drops the single outlier on each tail
        let tm = trimmed_mean(&samples, 0.1).unwrap();
        assert!((tm - 10.0).abs() < 1e-9, "got {tm}");
        // untrimmed mean is polluted
        assert!(mean(&samples).unwrap() > 100.0);
    }

    #[test]
    fn trimmed_mean_zero_trim_is_mean() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(trimmed_mean(&samples, 0.0), mean(&samples));
    }

    #[test]
    fn trimmed_mean_empty_is_none() {
        assert_eq!(trimmed_mean(&[], 0.1), None);
    }

    #[test]
    fn trimmed_mean_tiny_n_full_trim_falls_back_to_median() {
        let samples = [1.0, 100.0];
        let tm = trimmed_mean(&samples, 0.5).unwrap();
        assert!((tm - 50.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn trim_fraction_out_of_range_panics() {
        trimmed_mean(&[1.0], 0.6);
    }

    #[test]
    fn percentile_interpolates() {
        let samples = [0.0, 10.0];
        assert_eq!(percentile(&samples, 0.0), Some(0.0));
        assert_eq!(percentile(&samples, 100.0), Some(10.0));
        assert_eq!(percentile(&samples, 50.0), Some(5.0));
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), Some(0.0));
    }

    #[test]
    fn summary_fields_are_consistent() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Summary::of(&samples, 0.2).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        // 20% trim on 5 samples drops 1 from each side: mean of 2,3,4
        assert_eq!(s.trimmed_mean, 3.0);
        assert!(s.std_dev > 0.0);
        assert!(Summary::of(&[], 0.1).is_none());
    }
}
