//! Offline trace correlation (§III-A).
//!
//! Two reconstruction problems are solved here:
//!
//! 1. **Async correlation** — asynchronous operations (GPU kernels, async
//!    memcpy) appear as *two* spans: a launch span captured on the CPU
//!    timeline (CUPTI callback API) and an execution span on the GPU timeline
//!    (CUPTI activity API), linked by a `correlation_id` tag. Per the paper,
//!    "XSP uses the launch span's parent as the parent of the asynchronous
//!    function and uses the execution span to get the performance
//!    information". [`correlate_async_spans`] performs that merge.
//!
//! 2. **Parent reconstruction** — profilers at different stack levels cannot
//!    see each other, so e.g. kernel spans arrive without a layer parent.
//!    The [`CorrelationEngine`] builds an [`IntervalTree`] per stack level
//!    and assigns each orphan span the unique span one level up (among
//!    levels present) whose interval contains it. Ambiguities (several
//!    containing candidates, i.e. parallel events) are reported so the
//!    caller can re-run with serialized execution
//!    (`CUDA_LAUNCH_BLOCKING=1`).
//!
//! The engine follows the repository-wide "index once, borrow everywhere"
//! rule: it consumes the drained [`Trace`] (no span is cloned on the hot
//! path), walks each evaluation run exactly once to merge async pairs and
//! bucket span indices per stack level, and builds interval trees *lazily* —
//! a level's tree is constructed on the first probe against it and cached
//! for every later probe in the run. Levels that are never probed (most
//! notably the kernel level, which holds the overwhelming majority of
//! spans but can never be anyone's parent) never pay for tree
//! construction. [`reconstruct_parents`] remains as the thin borrowing
//! wrapper the offline paths and tests use.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::interval::{Interval, IntervalTree};
use crate::server::Trace;
use crate::span::{tag_keys, Span, SpanId, StackLevel, TagValue};
use crate::store::{SpanStore, HAS_CID, IS_EXEC, IS_LAUNCH};

/// A span with its resolved parent and, for async operations, the launch
/// interval used during parent matching.
#[derive(Debug, Clone)]
pub struct CorrelatedSpan {
    /// The effective span. For async operations this carries the *execution*
    /// timing (performance information) with tags merged from both halves.
    pub span: Span,
    /// `[start, end]` of the launch span for async operations; parent
    /// matching uses this interval because the execution may slide past the
    /// end of the enclosing layer.
    pub launch_interval: Option<(u64, u64)>,
    /// Resolved parent (explicit or reconstructed).
    pub parent: Option<SpanId>,
}

impl CorrelatedSpan {
    /// The interval used for parent matching: the launch interval for async
    /// spans, the span's own interval otherwise.
    pub fn anchor_interval(&self) -> (u64, u64) {
        self.launch_interval
            .unwrap_or((self.span.start_ns, self.span.end_ns))
    }

    fn passthrough(span: Span) -> Self {
        CorrelatedSpan {
            launch_interval: None,
            parent: span.parent,
            span,
        }
    }
}

/// Ambiguities discovered during parent reconstruction.
#[derive(Debug, Clone, Default)]
pub struct AmbiguityReport {
    /// Spans with more than one containing candidate parent, along with all
    /// candidates. Best-effort resolution picked the tightest interval.
    pub ambiguous: Vec<(SpanId, Vec<SpanId>)>,
    /// Spans below the top level with no containing candidate at the level
    /// above (typically execution spans that slid past their layer when the
    /// launch interval was unavailable).
    pub orphans: Vec<SpanId>,
}

impl AmbiguityReport {
    /// Whether every parent was assigned uniquely.
    pub fn is_clean(&self) -> bool {
        self.ambiguous.is_empty() && self.orphans.is_empty()
    }

    /// Whether a serialized re-run (e.g. `CUDA_LAUNCH_BLOCKING=1`) is needed
    /// to obtain the missing correlation information (§III-A).
    pub fn needs_serialized_rerun(&self) -> bool {
        !self.ambiguous.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: AmbiguityReport) {
        self.ambiguous.extend(other.ambiguous);
        self.orphans.extend(other.orphans);
    }
}

/// A fully correlated trace: every span has a resolved parent (where one
/// exists) and async pairs are merged.
///
/// Like [`Trace`], this is an indexed store: the span table is built once by
/// the [`CorrelationEngine`] together with a `SpanId → index` map, the
/// resolved-parent adjacency, and the root set, so [`CorrelatedTrace::find`]
/// and [`CorrelatedTrace::children_of`] are map lookups instead of linear
/// scans and exporters/analyses borrow views instead of re-deriving them.
/// The span table is private; the only mutation the pipeline needs —
/// re-parenting a span after a serialized re-run — goes through
/// [`CorrelatedTrace::set_parent`], which keeps every index coherent.
#[derive(Debug, Clone, Default)]
pub struct CorrelatedTrace {
    /// Correlated spans in publication order.
    spans: Vec<CorrelatedSpan>,
    /// `SpanId → index` (first occurrence wins).
    index_of: FxHashMap<SpanId, usize>,
    /// Resolved parent → child indices, in appearance order.
    children: FxHashMap<SpanId, Vec<usize>>,
    /// Indices of spans with no parent *present in this trace*, ascending.
    roots: Vec<usize>,
    /// Reconstruction diagnostics.
    pub ambiguities: AmbiguityReport,
}

impl CorrelatedTrace {
    /// Builds the indexed store from correlated spans (used by the engine
    /// and by tests/oracles that assemble traces by hand).
    pub fn new(spans: Vec<CorrelatedSpan>, ambiguities: AmbiguityReport) -> Self {
        let mut index_of = FxHashMap::default();
        index_of.reserve(spans.len());
        for (i, s) in spans.iter().enumerate() {
            index_of.entry(s.span.id).or_insert(i);
        }
        let mut children: FxHashMap<SpanId, Vec<usize>> = FxHashMap::default();
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                Some(p) => {
                    children.entry(p).or_default().push(i);
                    if !index_of.contains_key(&p) {
                        roots.push(i);
                    }
                }
                None => roots.push(i),
            }
        }
        Self {
            spans,
            index_of,
            children,
            roots,
            ambiguities,
        }
    }

    /// All correlated spans, in publication order.
    pub fn spans(&self) -> &[CorrelatedSpan] {
        &self.spans
    }

    /// Iterates the effective [`Span`]s in publication order (the view
    /// exporters stream).
    pub fn iter_spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().map(|s| &s.span)
    }

    /// Spans at the given level.
    pub fn at_level(&self, level: StackLevel) -> impl Iterator<Item = &CorrelatedSpan> {
        self.spans.iter().filter(move |s| s.span.level == level)
    }

    /// Direct children of `parent`, in appearance order.
    pub fn children_of(&self, parent: SpanId) -> Vec<&CorrelatedSpan> {
        self.child_indices(parent)
            .iter()
            .map(|&i| &self.spans[i])
            .collect()
    }

    /// Indices of the direct children of `parent`, in appearance order.
    pub fn child_indices(&self, parent: SpanId) -> &[usize] {
        self.children.get(&parent).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Indices of spans whose parent is unset or absent from this trace
    /// (ascending) — the forest roots exporters traverse from.
    pub fn root_indices(&self) -> &[usize] {
        &self.roots
    }

    /// Finds a span by id through the built-once index map.
    pub fn find(&self, id: SpanId) -> Option<&CorrelatedSpan> {
        self.index_of.get(&id).map(|&i| &self.spans[i])
    }

    /// The index of a span id in the span table.
    pub fn position(&self, id: SpanId) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// Re-parents the span at `idx`, keeping the span table, adjacency and
    /// root set coherent — the pipeline uses this to graft the serialized
    /// re-run's unambiguous kernel→layer assignment onto an async trace.
    pub fn set_parent(&mut self, idx: usize, parent: SpanId) {
        let old = self.spans[idx].parent;
        self.spans[idx].parent = Some(parent);
        self.spans[idx].span.parent = Some(parent);
        if old == Some(parent) {
            return;
        }
        if let Some(p) = old {
            if let Some(v) = self.children.get_mut(&p) {
                v.retain(|&i| i != idx);
            }
        }
        let siblings = self.children.entry(parent).or_default();
        let pos = siblings.partition_point(|&i| i < idx);
        siblings.insert(pos, idx);
        let was_root = match old {
            None => true,
            Some(p) => !self.index_of.contains_key(&p),
        };
        let is_root = !self.index_of.contains_key(&parent);
        if was_root != is_root {
            match self.roots.binary_search(&idx) {
                Ok(pos) if !is_root => {
                    self.roots.remove(pos);
                }
                Err(pos) if is_root => self.roots.insert(pos, idx),
                _ => {}
            }
        }
    }

    /// Total number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// A span's role in async correlation, derived from its tags once per
/// engine pass.
#[derive(Clone, Copy)]
enum AsyncRole {
    /// Launch half of an async pair (`async_launch` only), with its cid.
    Launch(u64),
    /// Execution half (`async_execution` only), with its cid.
    Execution(u64),
    /// No async tags, no cid, or both flags (an already-merged capture).
    Plain,
}

/// Derives a span's async-correlation role — the single definition of the
/// pairing semantics, shared by [`CorrelationEngine`] and
/// [`correlate_async_spans`] so the two paths cannot drift. A span carrying
/// *both* flags is an already-merged pair from a previous correlation
/// (e.g. a re-imported span-JSON-lines capture, where the execution span
/// absorbed the launch's tags); it takes part in no pairing, which makes
/// re-correlation idempotent.
fn async_role(s: &Span) -> AsyncRole {
    match s.correlation_id() {
        Some(cid) => match (s.is_async_launch(), s.is_async_execution()) {
            (true, false) => AsyncRole::Launch(cid),
            (false, true) => AsyncRole::Execution(cid),
            // both flags (already merged) or neither: plain span
            _ => AsyncRole::Plain,
        },
        None => AsyncRole::Plain,
    }
}

/// The launch half of an async pair, captured once during the
/// classification pass so merges borrow it instead of re-scanning.
struct LaunchHalf {
    parent: Option<SpanId>,
    interval: (u64, u64),
    tags: Vec<(String, TagValue)>,
}

/// Reusable correlation state: per-level index buckets and the lazy
/// interval-tree cache.
///
/// One engine correlates one [`Trace`] at a time (any number of evaluation
/// runs) and may be reused across traces — the scratch buffers keep their
/// capacity. Within one run, a level's tree is built on the first probe
/// against that level and cached for the rest of the run: every child level
/// below shares it, so the layer tree is built once for all kernels and
/// library calls, and levels nothing ever probes (the kernel level — the
/// largest — can never be a parent candidate) are never built at all.
/// [`CorrelationEngine::trees_built`] exposes the construction count so
/// tests can pin the laziness.
#[derive(Default)]
pub struct CorrelationEngine {
    /// Per-level span indices of the run being correlated, `StackLevel`
    /// rank as the slot.
    level_buckets: [Vec<usize>; StackLevel::ALL.len()],
    /// Lazily built per-level trees for the run being correlated.
    trees: [Option<IntervalTree>; StackLevel::ALL.len()],
    /// Cumulative count of tree constructions per level (across runs and
    /// traces) — observability for the laziness contract.
    trees_built: [usize; StackLevel::ALL.len()],
}

impl CorrelationEngine {
    /// Creates an engine with empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interval trees built at `level` so far.
    pub fn trees_built_at(&self, level: StackLevel) -> usize {
        self.trees_built[level.rank() as usize]
    }

    /// Total number of interval trees built so far.
    pub fn trees_built(&self) -> usize {
        self.trees_built.iter().sum()
    }

    /// Correlates every evaluation run of `trace` — async-pair merge plus
    /// parent reconstruction — consuming the trace so no span is cloned.
    ///
    /// Runs are processed independently in first-appearance order; the
    /// resulting span order, parent assignments and ambiguity report are
    /// identical to correlating each run's sub-trace on its own (the
    /// byte-identity goldens pin this).
    pub fn correlate(&mut self, trace: Trace) -> CorrelatedTrace {
        let mut ambiguities = AmbiguityReport::default();
        let mut out: Vec<CorrelatedSpan> = Vec::with_capacity(trace.len());
        for run in Self::run_buckets(trace) {
            self.correlate_run(run, &mut out, &mut ambiguities);
        }
        CorrelatedTrace::new(out, ambiguities)
    }

    /// Splits a consumed trace into per-run span vectors, first-appearance
    /// order. Single-run traces (the pipeline hot path) move straight
    /// through.
    fn run_buckets(trace: Trace) -> Vec<Vec<Span>> {
        if trace.is_empty() {
            return Vec::new();
        }
        if trace.trace_ids().len() == 1 {
            return vec![trace.into_spans()];
        }
        let (spans, runs) = trace.into_parts();
        let mut slots: Vec<Option<Span>> = spans.into_iter().map(Some).collect();
        runs.into_iter()
            .map(|(_, idxs)| {
                idxs.into_iter()
                    .map(|i| slots[i].take().expect("each span moved once"))
                    .collect()
            })
            .collect()
    }

    /// Correlates one run: a single pass merges async pairs and buckets the
    /// surviving spans per stack level, then parent reconstruction probes
    /// the lazily built level trees.
    fn correlate_run(
        &mut self,
        spans: Vec<Span>,
        out: &mut Vec<CorrelatedSpan>,
        ambiguities: &mut AmbiguityReport,
    ) {
        for bucket in &mut self.level_buckets {
            bucket.clear();
        }
        for tree in &mut self.trees {
            *tree = None;
        }
        let base = out.len();

        // Classification: which correlation ids have a launch half (kept
        // aside for merging) and which have an execution half. The async
        // role of each span is derived from its tags exactly once here —
        // the tag lookups are linear key scans, so re-deriving the role in
        // every later pass would triple the tag-scan cost.
        let mut roles: Vec<AsyncRole> = Vec::with_capacity(spans.len());
        let mut exec_cids: FxHashSet<u64> = FxHashSet::default();
        for s in &spans {
            let role = async_role(s);
            if let AsyncRole::Execution(cid) = role {
                exec_cids.insert(cid);
            }
            roles.push(role);
        }
        // Launch halves are copied aside only when an execution half exists
        // to merge into (the tags copy is needed because one launch may
        // serve several executions); unpaired launches move straight
        // through below, clone-free. The walk is sequential over the span
        // table (cache-friendly) and preserves last-wins cid semantics.
        let mut launches: FxHashMap<u64, LaunchHalf> = FxHashMap::default();
        for (i, s) in spans.iter().enumerate() {
            if let AsyncRole::Launch(cid) = roles[i] {
                if exec_cids.contains(&cid) {
                    launches.insert(
                        cid,
                        LaunchHalf {
                            parent: s.parent,
                            interval: (s.start_ns, s.end_ns),
                            tags: s.tags.clone(),
                        },
                    );
                }
            }
        }

        // Merge pass: spans move into the output table; paired launch halves
        // fold into their execution span (timing from the execution, parent
        // and missing tags from the launch). The per-level index buckets
        // fill as spans land.
        for (i, s) in spans.into_iter().enumerate() {
            let entry = match roles[i] {
                AsyncRole::Execution(cid) => {
                    if let Some(launch) = launches.get(&cid) {
                        let mut merged = s;
                        merged.parent = launch.parent;
                        for (k, v) in &launch.tags {
                            if merged.tag(k).is_none() {
                                merged.tags.push((k.clone(), v.clone()));
                            }
                        }
                        CorrelatedSpan {
                            launch_interval: Some(launch.interval),
                            parent: merged.parent,
                            span: merged,
                        }
                    } else {
                        CorrelatedSpan::passthrough(s)
                    }
                }
                AsyncRole::Launch(cid) => {
                    // Launch halves fold into their execution span; keep
                    // only unpaired launches.
                    if exec_cids.contains(&cid) {
                        continue;
                    }
                    CorrelatedSpan::passthrough(s)
                }
                AsyncRole::Plain => CorrelatedSpan::passthrough(s),
            };
            self.level_buckets[entry.span.level.rank() as usize].push(out.len());
            out.push(entry);
        }

        // Which levels exist in this run, ordered top-to-bottom.
        let levels: Vec<StackLevel> = StackLevel::ALL
            .iter()
            .copied()
            .filter(|l| !self.level_buckets[l.rank() as usize].is_empty())
            .collect();

        for i in base..out.len() {
            if out[i].parent.is_some() {
                continue; // explicit reference wins
            }
            let child_level = out[i].span.level;
            let Some(pos) = levels.iter().position(|l| *l == child_level) else {
                continue;
            };
            if pos == 0 {
                continue; // top level present: no parent expected
            }
            // Candidate intervals, in preference order: the launch interval
            // for async spans ("XSP uses the kernel launch span to associate
            // it with the parent layer span"), then the span's own execution
            // interval — needed when the parent profiler reports
            // device-anchored intervals, as TensorFlow's device tracer does.
            let mut probes: Vec<(u64, u64)> = vec![out[i].anchor_interval()];
            let own = (out[i].span.start_ns, out[i].span.end_ns);
            if probes[0] != own {
                probes.push(own);
            }
            // Search the nearest level above first; when nothing there
            // contains the span (e.g. a memcpy issued during model-level
            // pre-processing, with no enclosing layer), walk further up the
            // stack.
            let mut candidates: Vec<usize> = Vec::new();
            'search: for ancestor in (0..pos).rev() {
                let tree = Self::tree_for(
                    &mut self.trees,
                    &mut self.trees_built,
                    &self.level_buckets,
                    levels[ancestor],
                    out,
                );
                for &(lo, hi) in &probes {
                    candidates = tree.containing(lo, hi).map(|iv| iv.key).collect();
                    // A span never parents itself (possible only with equal
                    // intervals at mixed levels, but be safe).
                    candidates.retain(|&c| c != i);
                    if !candidates.is_empty() {
                        break 'search;
                    }
                }
            }
            match candidates.len() {
                0 => {
                    ambiguities.orphans.push(out[i].span.id);
                }
                1 => {
                    let pid = out[candidates[0]].span.id;
                    out[i].parent = Some(pid);
                    out[i].span.parent = Some(pid);
                }
                _ => {
                    // Best effort: tightest containing interval.
                    let best = *candidates
                        .iter()
                        .min_by_key(|&&c| out[c].span.end_ns - out[c].span.start_ns)
                        .expect("nonempty");
                    let all: Vec<SpanId> = candidates.iter().map(|&c| out[c].span.id).collect();
                    ambiguities.ambiguous.push((out[i].span.id, all));
                    let pid = out[best].span.id;
                    out[i].parent = Some(pid);
                    out[i].span.parent = Some(pid);
                }
            }
        }
    }

    /// Correlates every run of `store` without materializing a single
    /// owned [`Span`] — the columnar twin of
    /// [`CorrelationEngine::correlate`], with identical merge, parent and
    /// ambiguity semantics (the store-vs-span oracle test pins the
    /// equivalence). Async roles come from the store's pre-computed
    /// per-span columns, merged launch tags are arena *references* instead
    /// of clones, and parents/intervals are column reads, so the pass
    /// performs no per-span allocation at all.
    pub fn correlate_store(&mut self, store: &SpanStore) -> StoreCorrelation {
        let mut out = StoreCorrelation {
            entries: Vec::with_capacity(store.len()),
            extra_tags: Vec::new(),
            ambiguities: AmbiguityReport::default(),
        };
        for run in 0..store.run_buckets().len() {
            self.correlate_store_run(store, run, &mut out);
        }
        out
    }

    /// Store-native twin of [`CorrelationEngine::correlate_run`]; every
    /// step mirrors the span-based pass index-for-index.
    fn correlate_store_run(&mut self, store: &SpanStore, run: usize, out: &mut StoreCorrelation) {
        for bucket in &mut self.level_buckets {
            bucket.clear();
        }
        for tree in &mut self.trees {
            *tree = None;
        }
        let base = out.entries.len();
        let idxs: &[u32] = &store.run_buckets()[run].1;

        // Classification from the pre-computed async columns — the same
        // facts `async_role` derives from tags, without the tag walk.
        let mut roles: Vec<AsyncRole> = Vec::with_capacity(idxs.len());
        let mut exec_cids: FxHashSet<u64> = FxHashSet::default();
        for &si in idxs {
            let info = store.async_info(si);
            let role = if info.flags & HAS_CID != 0 {
                match (info.flags & IS_LAUNCH != 0, info.flags & IS_EXEC != 0) {
                    (true, false) => AsyncRole::Launch(info.cid),
                    (false, true) => AsyncRole::Execution(info.cid),
                    _ => AsyncRole::Plain,
                }
            } else {
                AsyncRole::Plain
            };
            if let AsyncRole::Execution(cid) = role {
                exec_cids.insert(cid);
            }
            roles.push(role);
        }
        // Launch halves kept aside when paired — by store index, no tag
        // clone (the merged tags stay arena references).
        struct StoreLaunch {
            parent: Option<SpanId>,
            interval: (u64, u64),
            span: u32,
        }
        let mut launches: FxHashMap<u64, StoreLaunch> = FxHashMap::default();
        for (j, &si) in idxs.iter().enumerate() {
            if let AsyncRole::Launch(cid) = roles[j] {
                if exec_cids.contains(&cid) {
                    launches.insert(
                        cid,
                        StoreLaunch {
                            parent: store.parent_at(si),
                            interval: store.interval_at(si),
                            span: si,
                        },
                    );
                }
            }
        }

        // Merge pass: paired launches fold into their execution entry
        // (timing from the execution, parent and missing tags from the
        // launch — "missing" judged against the execution's tags plus the
        // extras appended so far, exactly like the growing `merged.tags`).
        for (j, &si) in idxs.iter().enumerate() {
            let entry = match roles[j] {
                AsyncRole::Execution(cid) => {
                    if let Some(launch) = launches.get(&cid) {
                        let extras_start = out.extra_tags.len();
                        let exec_tags = store.tag_range(si);
                        for lt in store.tag_range(launch.span) {
                            let key = store.tag_key_at(lt);
                            let present = exec_tags.clone().any(|t| store.tag_key_at(t) == key)
                                || out.extra_tags[extras_start..]
                                    .iter()
                                    .any(|&e| store.tag_key_at(e as usize) == key);
                            if !present {
                                out.extra_tags.push(lt as u32);
                            }
                        }
                        StoreEntry {
                            span: si,
                            parent: launch.parent,
                            launch_interval: Some(launch.interval),
                            extras: (
                                extras_start as u32,
                                (out.extra_tags.len() - extras_start) as u32,
                            ),
                        }
                    } else {
                        StoreEntry::passthrough(store, si)
                    }
                }
                AsyncRole::Launch(cid) => {
                    if exec_cids.contains(&cid) {
                        continue;
                    }
                    StoreEntry::passthrough(store, si)
                }
                AsyncRole::Plain => StoreEntry::passthrough(store, si),
            };
            self.level_buckets[store.level_at(si).rank() as usize].push(out.entries.len());
            out.entries.push(entry);
        }

        let levels: Vec<StackLevel> = StackLevel::ALL
            .iter()
            .copied()
            .filter(|l| !self.level_buckets[l.rank() as usize].is_empty())
            .collect();

        for i in base..out.entries.len() {
            if out.entries[i].parent.is_some() {
                continue;
            }
            let si = out.entries[i].span;
            let child_level = store.level_at(si);
            let Some(pos) = levels.iter().position(|l| *l == child_level) else {
                continue;
            };
            if pos == 0 {
                continue;
            }
            let own = store.interval_at(si);
            let mut probes: Vec<(u64, u64)> = vec![out.entries[i].launch_interval.unwrap_or(own)];
            if probes[0] != own {
                probes.push(own);
            }
            let mut candidates: Vec<usize> = Vec::new();
            'search: for ancestor in (0..pos).rev() {
                let tree = Self::tree_for_store(
                    &mut self.trees,
                    &mut self.trees_built,
                    &self.level_buckets,
                    levels[ancestor],
                    store,
                    &out.entries,
                );
                for &(lo, hi) in &probes {
                    candidates = tree.containing(lo, hi).map(|iv| iv.key).collect();
                    candidates.retain(|&c| c != i);
                    if !candidates.is_empty() {
                        break 'search;
                    }
                }
            }
            match candidates.len() {
                0 => {
                    out.ambiguities.orphans.push(store.id_at(si));
                }
                1 => {
                    out.entries[i].parent = Some(store.id_at(out.entries[candidates[0]].span));
                }
                _ => {
                    let best = *candidates
                        .iter()
                        .min_by_key(|&&c| {
                            let (s, e) = store.interval_at(out.entries[c].span);
                            e - s
                        })
                        .expect("nonempty");
                    let all: Vec<SpanId> = candidates
                        .iter()
                        .map(|&c| store.id_at(out.entries[c].span))
                        .collect();
                    out.ambiguities.ambiguous.push((store.id_at(si), all));
                    out.entries[i].parent = Some(store.id_at(out.entries[best].span));
                }
            }
        }
    }

    /// [`CorrelationEngine::tree_for`] over store entries: intervals come
    /// from the store's timestamp columns (execution timing, matching the
    /// span-based pass).
    fn tree_for_store<'t>(
        trees: &'t mut [Option<IntervalTree>; StackLevel::ALL.len()],
        trees_built: &mut [usize; StackLevel::ALL.len()],
        level_buckets: &[Vec<usize>; StackLevel::ALL.len()],
        level: StackLevel,
        store: &SpanStore,
        entries: &[StoreEntry],
    ) -> &'t IntervalTree {
        let rank = level.rank() as usize;
        if trees[rank].is_none() {
            let intervals: Vec<Interval> = level_buckets[rank]
                .iter()
                .map(|&i| {
                    let (s, e) = store.interval_at(entries[i].span);
                    Interval::new(s, e, i)
                })
                .collect();
            trees_built[rank] += 1;
            trees[rank] = Some(IntervalTree::build(intervals));
        }
        trees[rank].as_ref().expect("just built")
    }

    /// Returns the interval tree for `level`, building it on first use from
    /// the run's level bucket. A free function over the split-borrowed
    /// fields so the caller can keep reading `out` while the tree is alive.
    fn tree_for<'t>(
        trees: &'t mut [Option<IntervalTree>; StackLevel::ALL.len()],
        trees_built: &mut [usize; StackLevel::ALL.len()],
        level_buckets: &[Vec<usize>; StackLevel::ALL.len()],
        level: StackLevel,
        out: &[CorrelatedSpan],
    ) -> &'t IntervalTree {
        let rank = level.rank() as usize;
        if trees[rank].is_none() {
            let intervals: Vec<Interval> = level_buckets[rank]
                .iter()
                .map(|&i| Interval::new(out[i].span.start_ns, out[i].span.end_ns, i))
                .collect();
            trees_built[rank] += 1;
            trees[rank] = Some(IntervalTree::build(intervals));
        }
        trees[rank].as_ref().expect("just built")
    }
}

/// One correlated span in a [`StoreCorrelation`]: a store index plus the
/// correlation results (resolved parent, launch interval of a merged async
/// pair, and any launch tags folded in — kept as arena references, not
/// clones).
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// Index of the underlying span in the correlated [`SpanStore`].
    pub span: u32,
    /// Parent after correlation: the span's own explicit parent, the
    /// merged launch's parent, or a reconstructed one.
    pub parent: Option<SpanId>,
    /// `(start_ns, end_ns)` of the merged launch half, when this entry is
    /// a correlated async pair.
    pub launch_interval: Option<(u64, u64)>,
    /// `(start, len)` range into the correlation's extra-tag arena.
    extras: (u32, u32),
}

impl StoreEntry {
    /// An entry that passes the store span through unchanged.
    fn passthrough(store: &SpanStore, si: u32) -> Self {
        StoreEntry {
            span: si,
            parent: store.parent_at(si),
            launch_interval: None,
            extras: (0, 0),
        }
    }
}

/// The result of [`CorrelationEngine::correlate_store`]: correlation
/// verdicts over a [`SpanStore`], without any owned [`Span`]s.
///
/// Entries reference spans by store index; merged launch tags are indices
/// into the store's tag arena. [`StoreCorrelation::materialize`] converts
/// the result into the owned [`CorrelatedTrace`] the analysis and export
/// layers consume — the output is identical to running
/// [`CorrelationEngine::correlate`] on the materialized spans (pinned by
/// the oracle test), but the correlation pass itself touched only columns.
#[derive(Debug, Default)]
pub struct StoreCorrelation {
    entries: Vec<StoreEntry>,
    /// Arena indices (into the store's tag arena) of launch tags merged
    /// into execution entries; sliced per entry via `StoreEntry::extras`.
    extra_tags: Vec<u32>,
    /// Parent reconstructions that failed or were ambiguous.
    pub ambiguities: AmbiguityReport,
}

impl StoreCorrelation {
    /// Number of correlated entries (merged async pairs count once).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no spans were correlated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The correlated entries, in the same order the span-based engine
    /// would emit them.
    pub fn entries(&self) -> &[StoreEntry] {
        &self.entries
    }

    /// The launch tags merged into `entry`, as `(key, value)` pairs
    /// resolved from the store's arena.
    pub fn extra_tags_of<'s>(
        &'s self,
        entry: &StoreEntry,
        store: &'s SpanStore,
    ) -> impl Iterator<Item = (String, TagValue)> + 's {
        let (start, len) = entry.extras;
        self.extra_tags[start as usize..(start + len) as usize]
            .iter()
            .map(move |&arena| store.tag_pair_at(arena as usize))
    }

    /// Materializes the correlation into an owned [`CorrelatedTrace`],
    /// byte-equivalent to the span-based engine's output: each entry's span
    /// is rebuilt from the store with the correlated parent applied and any
    /// merged launch tags appended in launch order.
    pub fn materialize(&self, store: &SpanStore) -> CorrelatedTrace {
        let spans: Vec<CorrelatedSpan> = self
            .entries
            .iter()
            .map(|entry| {
                let mut span = store.materialize(entry.span);
                span.parent = entry.parent;
                span.tags.extend(self.extra_tags_of(entry, store));
                CorrelatedSpan {
                    parent: entry.parent,
                    launch_interval: entry.launch_interval,
                    span,
                }
            })
            .collect();
        CorrelatedTrace::new(spans, self.ambiguities.clone())
    }
}

/// Merges async launch/execution span pairs by correlation id.
///
/// Returns correlated spans where each async pair became a single entry
/// (execution timing + merged tags + launch parent/interval) plus all
/// non-async spans unchanged. Unpaired halves are passed through unchanged —
/// a launch whose kernel never ran, or an execution record whose callback was
/// dropped, must stay visible to the analysis. A span carrying *both* async
/// flags is an already-merged pair (a re-imported capture) and passes
/// through untouched, so correlation is idempotent.
///
/// This is the borrowing single-step API; the pipeline itself goes through
/// [`CorrelationEngine::correlate`], which performs the same merge without
/// cloning spans.
pub fn correlate_async_spans(spans: &[Span]) -> Vec<CorrelatedSpan> {
    let mut launches: FxHashMap<u64, &Span> = FxHashMap::default();
    let mut exec_cids: FxHashSet<u64> = FxHashSet::default();
    for s in spans {
        match async_role(s) {
            AsyncRole::Launch(cid) => {
                launches.insert(cid, s);
            }
            AsyncRole::Execution(cid) => {
                exec_cids.insert(cid);
            }
            AsyncRole::Plain => {}
        }
    }

    let mut out = Vec::with_capacity(spans.len());
    for s in spans {
        match async_role(s) {
            AsyncRole::Execution(cid) => {
                if let Some(launch) = launches.get(&cid) {
                    // Merge: execution timing, union of tags, launch parent.
                    let mut merged = s.clone();
                    merged.parent = launch.parent;
                    for (k, v) in &launch.tags {
                        if merged.tag(k).is_none() {
                            merged.tags.push((k.clone(), v.clone()));
                        }
                    }
                    out.push(CorrelatedSpan {
                        launch_interval: Some((launch.start_ns, launch.end_ns)),
                        parent: merged.parent,
                        span: merged,
                    });
                } else {
                    out.push(CorrelatedSpan::passthrough(s.clone()));
                }
            }
            AsyncRole::Launch(cid) => {
                // Launch halves are folded into their execution span; keep
                // only unpaired launches.
                if !exec_cids.contains(&cid) {
                    out.push(CorrelatedSpan::passthrough(s.clone()));
                }
            }
            AsyncRole::Plain => out.push(CorrelatedSpan::passthrough(s.clone())),
        }
    }
    out
}

/// Reconstructs the parent of every span lacking an explicit reference, per
/// evaluation run, and returns the correlated trace.
///
/// For each stack level present in the trace, candidate parents for a child
/// at level `L` are spans at the *nearest* level above `L` that is present.
/// A unique containing candidate becomes the parent. Multiple candidates are
/// recorded in the [`AmbiguityReport`] (best-effort: tightest containing
/// interval wins), mirroring the paper's requirement of a serialized re-run
/// for parallel events.
///
/// This is the borrowing wrapper over [`CorrelationEngine::correlate`] (one
/// clone of the span table); callers that own their [`Trace`] should feed
/// the engine directly and pay no clone at all.
pub fn reconstruct_parents(trace: &Trace) -> CorrelatedTrace {
    CorrelationEngine::new().correlate(trace.clone_parts())
}

/// Convenience: attaches a numeric tag to a span (used by adapters when
/// merging metric values post-hoc).
pub fn set_tag(span: &mut Span, key: &str, value: TagValue) {
    if let Some(slot) = span.tags.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    } else {
        span.tags.push((key.to_owned(), value));
    }
}

/// Extracts a named metric tag as `f64` from a span, if present.
pub fn metric_f64(span: &Span, key: &str) -> Option<f64> {
    span.tag(key).and_then(|v| v.as_f64())
}

/// Extracts the standard GPU metric tags (`flop_count_sp`,
/// `dram_read_bytes`, `dram_write_bytes`, `achieved_occupancy`).
pub fn gpu_metrics(span: &Span) -> (Option<u64>, Option<u64>, Option<u64>, Option<f64>) {
    (
        span.tag(tag_keys::FLOP_COUNT_SP).and_then(|v| v.as_u64()),
        span.tag(tag_keys::DRAM_READ_BYTES).and_then(|v| v.as_u64()),
        span.tag(tag_keys::DRAM_WRITE_BYTES)
            .and_then(|v| v.as_u64()),
        span.tag(tag_keys::ACHIEVED_OCCUPANCY)
            .and_then(|v| v.as_f64()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuilder, TraceId};

    fn span(name: &str, level: StackLevel, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, level, TraceId(1)).start(s).finish(e)
    }

    fn launch(name: &str, cid: u64, s: u64, e: u64, parent: Option<SpanId>) -> Span {
        SpanBuilder::new(name, StackLevel::Kernel, TraceId(1))
            .start(s)
            .maybe_parent(parent)
            .tag(tag_keys::CORRELATION_ID, cid)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .finish(e)
    }

    fn exec(name: &str, cid: u64, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, StackLevel::Kernel, TraceId(1))
            .start(s)
            .tag(tag_keys::CORRELATION_ID, cid)
            .tag(tag_keys::ASYNC_EXECUTION, true)
            .tag(tag_keys::FLOP_COUNT_SP, 1000u64)
            .finish(e)
    }

    #[test]
    fn async_pair_merges_to_execution_timing() {
        let l = launch("cudaLaunchKernel", 7, 100, 110, None);
        let x = exec("convKernel", 7, 150, 400);
        let merged = correlate_async_spans(&[l, x]);
        assert_eq!(merged.len(), 1);
        let m = &merged[0];
        assert_eq!(m.span.start_ns, 150, "execution timing retained");
        assert_eq!(m.launch_interval, Some((100, 110)));
        assert_eq!(m.anchor_interval(), (100, 110));
        assert_eq!(
            m.span.tag(tag_keys::FLOP_COUNT_SP).unwrap().as_u64(),
            Some(1000)
        );
    }

    #[test]
    fn unpaired_halves_pass_through() {
        let l = launch("cudaLaunchKernel", 1, 0, 5, None);
        let x = exec("kernel", 2, 10, 20);
        let merged = correlate_async_spans(&[l, x]);
        assert_eq!(merged.len(), 2, "both unpaired halves kept");
    }

    #[test]
    fn reconstructs_kernel_to_layer_parent() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer1 = span("conv", StackLevel::Layer, 10, 400);
        layer1.parent = Some(mid);
        let l1 = layer1.id;
        let mut layer2 = span("relu", StackLevel::Layer, 420, 800);
        layer2.parent = Some(mid);
        // kernel launched inside layer1, executes way past layer1's end
        let l = launch("cudaLaunchKernel", 9, 50, 60, None);
        let x = exec("volta_scudnn", 9, 500, 900);
        let trace = Trace::from_spans(vec![model, layer1, layer2, l, x]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        let kernel = c
            .spans()
            .iter()
            .find(|s| s.span.name == "volta_scudnn")
            .unwrap();
        assert_eq!(
            kernel.parent,
            Some(l1),
            "launch interval must bind kernel to layer1"
        );
    }

    #[test]
    fn explicit_parent_is_preserved() {
        let model = span("predict", StackLevel::Model, 0, 100);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 0, 100);
        layer.parent = Some(mid);
        let trace = Trace::from_spans(vec![model, layer]);
        let c = reconstruct_parents(&trace);
        let l = c.spans().iter().find(|s| s.span.name == "conv").unwrap();
        assert_eq!(l.parent, Some(mid));
    }

    #[test]
    fn skips_missing_levels() {
        // No layer-level spans: kernels bind directly to the model span.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, k]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean());
        let kernel = c.spans().iter().find(|s| s.span.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(mid));
    }

    #[test]
    fn parallel_parents_are_flagged_ambiguous() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut a = span("layerA", StackLevel::Layer, 0, 500);
        a.parent = Some(mid);
        let mut b = span("layerB", StackLevel::Layer, 0, 600); // overlaps A
        b.parent = Some(mid);
        let a_id = a.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, a, b, k]);
        let c = reconstruct_parents(&trace);
        assert!(!c.ambiguities.is_clean());
        assert!(c.ambiguities.needs_serialized_rerun());
        assert_eq!(c.ambiguities.ambiguous.len(), 1);
        // best effort picked the tighter span (layerA)
        let kernel = c.spans().iter().find(|s| s.span.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(a_id));
    }

    #[test]
    fn orphans_are_reported() {
        let model = span("predict", StackLevel::Model, 0, 100);
        let k = span("stray", StackLevel::Kernel, 500, 600); // outside model
        let trace = Trace::from_spans(vec![model, k]);
        let c = reconstruct_parents(&trace);
        assert_eq!(c.ambiguities.orphans.len(), 1);
    }

    #[test]
    fn uncovered_kernel_walks_up_to_model_level() {
        // An H2D copy during pre-processing: layers exist elsewhere in the
        // trace but none contains the copy; it must bind to the model span.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 300, 600);
        layer.parent = Some(mid);
        let copy = span("cudaMemcpyH2D", StackLevel::Kernel, 50, 120);
        let trace = Trace::from_spans(vec![model, layer, copy]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        let m = c
            .spans()
            .iter()
            .find(|s| s.span.name == "cudaMemcpyH2D")
            .unwrap();
        assert_eq!(m.parent, Some(mid));
    }

    #[test]
    fn runs_are_correlated_independently() {
        let mut m1 = span("predict", StackLevel::Model, 0, 100);
        m1.trace_id = TraceId(1);
        let mut k1 = span("k", StackLevel::Kernel, 10, 20);
        k1.trace_id = TraceId(1);
        // run 2 overlaps run 1 in virtual time but must not cross-link
        let mut m2 = span("predict", StackLevel::Model, 0, 100);
        m2.trace_id = TraceId(2);
        let m2_id = m2.id;
        let mut k2 = span("k", StackLevel::Kernel, 10, 20);
        k2.trace_id = TraceId(2);
        let m1_id = m1.id;
        let trace = Trace::from_spans(vec![m1, k1, m2, k2]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean());
        let parents: Vec<Option<SpanId>> = c
            .spans()
            .iter()
            .filter(|s| s.span.level == StackLevel::Kernel)
            .map(|s| s.parent)
            .collect();
        assert_eq!(parents, vec![Some(m1_id), Some(m2_id)]);
    }

    #[test]
    fn kernel_level_tree_is_never_built() {
        // The laziness contract behind the hot-path win: the kernel level
        // holds the bulk of the spans but can never be a parent candidate,
        // so its interval tree must never be constructed.
        let model = span("predict", StackLevel::Model, 0, 100_000);
        let mid = model.id;
        let mut spans = vec![model];
        for i in 0..50u64 {
            let mut layer = span("conv", StackLevel::Layer, i * 1000, i * 1000 + 900);
            layer.parent = Some(mid);
            spans.push(layer);
        }
        for i in 0..500u64 {
            let at = (i % 50) * 1000;
            spans.push(launch("cudaLaunchKernel", i, at + 10, at + 20, None));
            spans.push(exec("volta_kernel", i, at + 30, at + 800));
        }
        let mut engine = CorrelationEngine::new();
        let c = engine.correlate(Trace::from_spans(spans));
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        assert_eq!(
            engine.trees_built_at(StackLevel::Kernel),
            0,
            "kernel tree must stay lazy"
        );
        assert_eq!(engine.trees_built_at(StackLevel::Layer), 1);
        assert_eq!(
            engine.trees_built_at(StackLevel::Model),
            0,
            "every kernel found a layer, so the model tree is never probed"
        );
    }

    #[test]
    fn engine_scratch_is_reusable_across_traces() {
        let mk = || {
            let model = span("predict", StackLevel::Model, 0, 1000);
            let k = span("kernel", StackLevel::Kernel, 100, 200);
            Trace::from_spans(vec![model, k])
        };
        let mut engine = CorrelationEngine::new();
        let a = engine.correlate(mk());
        let b = engine.correlate(mk());
        assert_eq!(a.len(), b.len());
        assert!(b.ambiguities.is_clean());
        assert_eq!(engine.trees_built_at(StackLevel::Model), 2);
    }

    #[test]
    fn indexed_lookups_match_linear_semantics() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 10, 400);
        layer.parent = Some(mid);
        let lid = layer.id;
        let k1 = span("k1", StackLevel::Kernel, 20, 100);
        let k2 = span("k2", StackLevel::Kernel, 120, 300);
        let trace = Trace::from_spans(vec![model, layer, k1, k2]);
        let c = reconstruct_parents(&trace);
        assert_eq!(c.find(lid).unwrap().span.name, "conv");
        assert_eq!(c.position(lid), Some(1));
        let kids = c.children_of(lid);
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].span.name, "k1");
        assert_eq!(kids[1].span.name, "k2");
        assert_eq!(c.root_indices(), &[0], "only the model span is a root");
    }

    #[test]
    fn set_parent_keeps_indexes_coherent() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut a = span("layerA", StackLevel::Layer, 0, 400);
        a.parent = Some(mid);
        let a_id = a.id;
        let mut b = span("layerB", StackLevel::Layer, 500, 900);
        b.parent = Some(mid);
        let b_id = b.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, a, b, k]);
        let mut c = reconstruct_parents(&trace);
        let kidx = c.position(c.spans()[3].span.id).unwrap();
        assert_eq!(c.spans()[kidx].parent, Some(a_id));
        c.set_parent(kidx, b_id);
        assert_eq!(c.spans()[kidx].parent, Some(b_id));
        assert_eq!(c.spans()[kidx].span.parent, Some(b_id));
        assert!(c.children_of(a_id).is_empty());
        assert_eq!(c.children_of(b_id).len(), 1);
        assert_eq!(c.root_indices(), &[0]);
        // re-parenting to an absent span makes it a root
        c.set_parent(kidx, SpanId(u64::MAX));
        assert_eq!(c.root_indices(), &[0, kidx]);
    }

    #[test]
    fn set_tag_overwrites() {
        let mut s = span("x", StackLevel::Kernel, 0, 1);
        set_tag(&mut s, "k", TagValue::U64(1));
        set_tag(&mut s, "k", TagValue::U64(2));
        assert_eq!(s.tag("k").unwrap().as_u64(), Some(2));
        assert_eq!(s.tags.iter().filter(|(k, _)| k == "k").count(), 1);
    }

    #[test]
    fn gpu_metrics_extraction() {
        let s = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(0)
            .tag(tag_keys::FLOP_COUNT_SP, 10u64)
            .tag(tag_keys::DRAM_READ_BYTES, 20u64)
            .tag(tag_keys::DRAM_WRITE_BYTES, 30u64)
            .tag(tag_keys::ACHIEVED_OCCUPANCY, 0.25f64)
            .finish(1);
        assert_eq!(gpu_metrics(&s), (Some(10), Some(20), Some(30), Some(0.25)));
    }

    /// Asserts the store pass and the span pass produced identical results:
    /// same spans (ids, parents, timing, tags in order), same launch
    /// intervals, same ambiguity report.
    fn assert_matches_span_engine(spans: Vec<Span>) {
        let expected = CorrelationEngine::new().correlate(Trace::from_spans(spans.clone()));
        let store = crate::store::SpanStore::from_spans(&spans);
        let got = CorrelationEngine::new()
            .correlate_store(&store)
            .materialize(&store);
        assert_eq!(got.len(), expected.len(), "entry counts diverge");
        for (g, e) in got.spans().iter().zip(expected.spans()) {
            assert_eq!(g.span, e.span, "materialized span diverges");
            assert_eq!(g.parent, e.parent, "parent diverges for {:?}", e.span.name);
            assert_eq!(
                g.launch_interval, e.launch_interval,
                "launch interval diverges for {:?}",
                e.span.name
            );
        }
        assert_eq!(
            got.ambiguities.ambiguous, expected.ambiguities.ambiguous,
            "ambiguous sets diverge"
        );
        assert_eq!(
            got.ambiguities.orphans, expected.ambiguities.orphans,
            "orphan sets diverge"
        );
    }

    #[test]
    fn store_pass_matches_span_engine_on_async_merge() {
        // Launch carries tags the execution is missing (merged, in launch
        // order), one it already has (skipped), and a duplicate key within
        // the launch itself (first wins, second skipped via the growing
        // extras check).
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 10, 400);
        layer.parent = Some(mid);
        let l = SpanBuilder::new("cudaLaunchKernel", StackLevel::Kernel, TraceId(1))
            .start(50)
            .tag(tag_keys::CORRELATION_ID, 9u64)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .tag("grid", "128x1x1")
            .tag(tag_keys::FLOP_COUNT_SP, 5u64) // exec already has it
            .tag("grid", "shadowed") // duplicate key inside launch
            .tag("stream", 3i64)
            .finish(60);
        let x = exec("volta_scudnn", 9, 500, 900);
        assert_matches_span_engine(vec![model, layer, l, x]);
    }

    #[test]
    fn store_pass_matches_span_engine_on_unpaired_and_both_flag_spans() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let lone_launch = launch("cudaLaunchKernel", 1, 10, 20, None);
        let lone_exec = exec("kernel", 2, 30, 40);
        // Both flags set: an already-merged pair, passes through untouched.
        let premerged = SpanBuilder::new("merged", StackLevel::Kernel, TraceId(1))
            .start(100)
            .tag(tag_keys::CORRELATION_ID, 3u64)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .tag(tag_keys::ASYNC_EXECUTION, true)
            .finish(200)
            .clone();
        assert_matches_span_engine(vec![model, lone_launch, lone_exec, premerged]);
    }

    #[test]
    fn store_pass_matches_span_engine_on_ambiguity_and_orphans() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut a = span("layerA", StackLevel::Layer, 0, 500);
        a.parent = Some(mid);
        let mut b = span("layerB", StackLevel::Layer, 0, 600); // overlaps A
        b.parent = Some(mid);
        let k = span("kernel", StackLevel::Kernel, 100, 200); // ambiguous
        let stray = span("stray", StackLevel::Kernel, 5000, 6000); // orphan
        assert_matches_span_engine(vec![model, a, b, k, stray]);
    }

    #[test]
    fn store_pass_matches_span_engine_across_runs() {
        // Two interleaved runs plus an async pair per run; runs must stay
        // independent in both passes.
        let mut spans = Vec::new();
        for tid in [1u64, 2] {
            let mut m = span("predict", StackLevel::Model, 0, 1000);
            m.trace_id = TraceId(tid);
            let mid = m.id;
            let mut layer = span("conv", StackLevel::Layer, 10, 400);
            layer.trace_id = TraceId(tid);
            layer.parent = Some(mid);
            let mut l = launch("cudaLaunchKernel", 40 + tid, 50, 60, None);
            l.trace_id = TraceId(tid);
            let mut x = exec("volta", 40 + tid, 450, 900);
            x.trace_id = TraceId(tid);
            spans.extend([m, layer, l, x]);
        }
        // Interleave publication order across the two runs.
        spans.swap(1, 5);
        assert_matches_span_engine(spans);
    }

    #[test]
    fn store_pass_is_allocation_shaped_like_the_span_pass() {
        // Same lazy-tree contract as the span engine: the kernel-level tree
        // is never built when every kernel resolves against layers.
        let model = span("predict", StackLevel::Model, 0, 100_000);
        let mid = model.id;
        let mut spans = vec![model];
        for i in 0..20u64 {
            let mut layer = span("conv", StackLevel::Layer, i * 1000, i * 1000 + 900);
            layer.parent = Some(mid);
            spans.push(layer);
        }
        for i in 0..100u64 {
            let at = (i % 20) * 1000;
            spans.push(launch("cudaLaunchKernel", i, at + 10, at + 20, None));
            spans.push(exec("volta_kernel", i, at + 30, at + 800));
        }
        let store = crate::store::SpanStore::from_spans(&spans);
        let mut engine = CorrelationEngine::new();
        let c = engine.correlate_store(&store);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        assert_eq!(c.len(), 1 + 20 + 100, "pairs merged");
        assert_eq!(engine.trees_built_at(StackLevel::Kernel), 0);
        assert_eq!(engine.trees_built_at(StackLevel::Layer), 1);
        assert_eq!(engine.trees_built_at(StackLevel::Model), 0);
    }
}
