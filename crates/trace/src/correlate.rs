//! Offline trace correlation (§III-A).
//!
//! Two reconstruction problems are solved here:
//!
//! 1. **Async correlation** — asynchronous operations (GPU kernels, async
//!    memcpy) appear as *two* spans: a launch span captured on the CPU
//!    timeline (CUPTI callback API) and an execution span on the GPU timeline
//!    (CUPTI activity API), linked by a `correlation_id` tag. Per the paper,
//!    "XSP uses the launch span's parent as the parent of the asynchronous
//!    function and uses the execution span to get the performance
//!    information". [`correlate_async_spans`] performs that merge.
//!
//! 2. **Parent reconstruction** — profilers at different stack levels cannot
//!    see each other, so e.g. kernel spans arrive without a layer parent.
//!    [`reconstruct_parents`] builds an [`IntervalTree`] per stack level and
//!    assigns each orphan span the unique span one level up (among levels
//!    present) whose interval contains it. Ambiguities (several containing
//!    candidates, i.e. parallel events) are reported so the caller can re-run
//!    with serialized execution (`CUDA_LAUNCH_BLOCKING=1`).

use crate::interval::{Interval, IntervalTree};
use crate::server::Trace;
use crate::span::{tag_keys, Span, SpanId, StackLevel, TagValue};
use std::collections::HashMap;

/// A span with its resolved parent and, for async operations, the launch
/// interval used during parent matching.
#[derive(Debug, Clone)]
pub struct CorrelatedSpan {
    /// The effective span. For async operations this carries the *execution*
    /// timing (performance information) with tags merged from both halves.
    pub span: Span,
    /// `[start, end]` of the launch span for async operations; parent
    /// matching uses this interval because the execution may slide past the
    /// end of the enclosing layer.
    pub launch_interval: Option<(u64, u64)>,
    /// Resolved parent (explicit or reconstructed).
    pub parent: Option<SpanId>,
}

impl CorrelatedSpan {
    /// The interval used for parent matching: the launch interval for async
    /// spans, the span's own interval otherwise.
    pub fn anchor_interval(&self) -> (u64, u64) {
        self.launch_interval
            .unwrap_or((self.span.start_ns, self.span.end_ns))
    }
}

/// Ambiguities discovered during parent reconstruction.
#[derive(Debug, Clone, Default)]
pub struct AmbiguityReport {
    /// Spans with more than one containing candidate parent, along with all
    /// candidates. Best-effort resolution picked the tightest interval.
    pub ambiguous: Vec<(SpanId, Vec<SpanId>)>,
    /// Spans below the top level with no containing candidate at the level
    /// above (typically execution spans that slid past their layer when the
    /// launch interval was unavailable).
    pub orphans: Vec<SpanId>,
}

impl AmbiguityReport {
    /// Whether every parent was assigned uniquely.
    pub fn is_clean(&self) -> bool {
        self.ambiguous.is_empty() && self.orphans.is_empty()
    }

    /// Whether a serialized re-run (e.g. `CUDA_LAUNCH_BLOCKING=1`) is needed
    /// to obtain the missing correlation information (§III-A).
    pub fn needs_serialized_rerun(&self) -> bool {
        !self.ambiguous.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: AmbiguityReport) {
        self.ambiguous.extend(other.ambiguous);
        self.orphans.extend(other.orphans);
    }
}

/// A fully correlated single-run trace: every span has a resolved parent
/// (where one exists) and async pairs are merged.
#[derive(Debug, Clone, Default)]
pub struct CorrelatedTrace {
    /// Correlated spans in publication order.
    pub spans: Vec<CorrelatedSpan>,
    /// Reconstruction diagnostics.
    pub ambiguities: AmbiguityReport,
}

impl CorrelatedTrace {
    /// Spans at the given level.
    pub fn at_level(&self, level: StackLevel) -> impl Iterator<Item = &CorrelatedSpan> {
        self.spans.iter().filter(move |s| s.span.level == level)
    }

    /// Direct children of `parent`.
    pub fn children_of(&self, parent: SpanId) -> Vec<&CorrelatedSpan> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect()
    }

    /// Finds a span by id.
    pub fn find(&self, id: SpanId) -> Option<&CorrelatedSpan> {
        self.spans.iter().find(|s| s.span.id == id)
    }

    /// Total number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Merges async launch/execution span pairs by correlation id.
///
/// Returns correlated spans where each async pair became a single entry
/// (execution timing + merged tags + launch parent/interval) plus all
/// non-async spans unchanged. Unpaired halves are passed through unchanged —
/// a launch whose kernel never ran, or an execution record whose callback was
/// dropped, must stay visible to the analysis.
pub fn correlate_async_spans(spans: &[Span]) -> Vec<CorrelatedSpan> {
    let mut launches: HashMap<u64, &Span> = HashMap::new();
    let mut executions: HashMap<u64, &Span> = HashMap::new();
    for s in spans {
        if let Some(cid) = s.correlation_id() {
            if s.is_async_launch() {
                launches.insert(cid, s);
                continue;
            } else if s.is_async_execution() {
                executions.insert(cid, s);
                continue;
            }
        }
    }

    let mut out = Vec::with_capacity(spans.len());
    for s in spans {
        let cid = s.correlation_id();
        match cid {
            Some(cid) if s.is_async_execution() => {
                if let Some(launch) = launches.get(&cid) {
                    // Merge: execution timing, union of tags, launch parent.
                    let mut merged = s.clone();
                    merged.parent = launch.parent;
                    for (k, v) in &launch.tags {
                        if merged.tag(k).is_none() {
                            merged.tags.push((k.clone(), v.clone()));
                        }
                    }
                    out.push(CorrelatedSpan {
                        launch_interval: Some((launch.start_ns, launch.end_ns)),
                        parent: merged.parent,
                        span: merged,
                    });
                } else {
                    out.push(CorrelatedSpan {
                        span: s.clone(),
                        launch_interval: None,
                        parent: s.parent,
                    });
                }
            }
            Some(cid) if s.is_async_launch() => {
                // Launch halves are folded into their execution span; keep
                // only unpaired launches.
                if !executions.contains_key(&cid) {
                    out.push(CorrelatedSpan {
                        span: s.clone(),
                        launch_interval: None,
                        parent: s.parent,
                    });
                }
            }
            _ => out.push(CorrelatedSpan {
                span: s.clone(),
                launch_interval: None,
                parent: s.parent,
            }),
        }
    }
    out
}

/// Reconstructs the parent of every span lacking an explicit reference, per
/// evaluation run, and returns the correlated trace.
///
/// For each stack level present in the trace, candidate parents for a child
/// at level `L` are spans at the *nearest* level above `L` that is present.
/// A unique containing candidate becomes the parent. Multiple candidates are
/// recorded in the [`AmbiguityReport`] (best-effort: tightest containing
/// interval wins), mirroring the paper's requirement of a serialized re-run
/// for parallel events.
pub fn reconstruct_parents(trace: &Trace) -> CorrelatedTrace {
    let mut result = CorrelatedTrace::default();
    for tid in trace.trace_ids() {
        let run: Vec<Span> = trace
            .spans()
            .iter()
            .filter(|s| s.trace_id == tid)
            .cloned()
            .collect();
        let sub = reconstruct_single_run(&run);
        result.spans.extend(sub.spans);
        result.ambiguities.merge(sub.ambiguities);
    }
    result
}

fn reconstruct_single_run(spans: &[Span]) -> CorrelatedTrace {
    let mut correlated = correlate_async_spans(spans);

    // Which levels exist in this run, ordered top-to-bottom.
    let levels: Vec<StackLevel> = StackLevel::ALL
        .iter()
        .copied()
        .filter(|l| correlated.iter().any(|s| s.span.level == *l))
        .collect();

    // One interval tree per level, keyed by index into `correlated`.
    let mut trees: HashMap<StackLevel, IntervalTree> = HashMap::new();
    for &level in &levels {
        let intervals: Vec<Interval> = correlated
            .iter()
            .enumerate()
            .filter(|(_, s)| s.span.level == level)
            .map(|(i, s)| Interval::new(s.span.start_ns, s.span.end_ns, i))
            .collect();
        trees.insert(level, IntervalTree::build(intervals));
    }

    let mut ambiguities = AmbiguityReport::default();

    for i in 0..correlated.len() {
        if correlated[i].parent.is_some() {
            continue; // explicit reference wins
        }
        let child_level = correlated[i].span.level;
        let Some(pos) = levels.iter().position(|l| *l == child_level) else {
            continue;
        };
        if pos == 0 {
            continue; // top level present: no parent expected
        }
        // Candidate intervals, in preference order: the launch interval for
        // async spans ("XSP uses the kernel launch span to associate it with
        // the parent layer span"), then the span's own execution interval —
        // needed when the parent profiler reports device-anchored intervals,
        // as TensorFlow's device tracer does.
        let mut probes: Vec<(u64, u64)> = vec![correlated[i].anchor_interval()];
        let own = (correlated[i].span.start_ns, correlated[i].span.end_ns);
        if probes[0] != own {
            probes.push(own);
        }
        // Search the nearest level above first; when nothing there contains
        // the span (e.g. a memcpy issued during model-level pre-processing,
        // with no enclosing layer), walk further up the stack.
        let mut candidates: Vec<usize> = Vec::new();
        'search: for ancestor in (0..pos).rev() {
            let tree = &trees[&levels[ancestor]];
            for &(lo, hi) in &probes {
                candidates = tree.containing(lo, hi).map(|iv| iv.key).collect();
                // A span never parents itself (possible only with equal
                // intervals at mixed levels, but be safe).
                candidates.retain(|&c| c != i);
                if !candidates.is_empty() {
                    break 'search;
                }
            }
        }
        match candidates.len() {
            0 => {
                ambiguities.orphans.push(correlated[i].span.id);
            }
            1 => {
                let pid = correlated[candidates[0]].span.id;
                correlated[i].parent = Some(pid);
                correlated[i].span.parent = Some(pid);
            }
            _ => {
                // Best effort: tightest containing interval.
                let best = *candidates
                    .iter()
                    .min_by_key(|&&c| correlated[c].span.end_ns - correlated[c].span.start_ns)
                    .expect("nonempty");
                let all: Vec<SpanId> = candidates.iter().map(|&c| correlated[c].span.id).collect();
                ambiguities.ambiguous.push((correlated[i].span.id, all));
                let pid = correlated[best].span.id;
                correlated[i].parent = Some(pid);
                correlated[i].span.parent = Some(pid);
            }
        }
    }

    CorrelatedTrace {
        spans: correlated,
        ambiguities,
    }
}

/// Convenience: attaches a numeric tag to a span (used by adapters when
/// merging metric values post-hoc).
pub fn set_tag(span: &mut Span, key: &str, value: TagValue) {
    if let Some(slot) = span.tags.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    } else {
        span.tags.push((key.to_owned(), value));
    }
}

/// Extracts a named metric tag as `f64` from a span, if present.
pub fn metric_f64(span: &Span, key: &str) -> Option<f64> {
    span.tag(key).and_then(|v| v.as_f64())
}

/// Extracts the standard GPU metric tags (`flop_count_sp`,
/// `dram_read_bytes`, `dram_write_bytes`, `achieved_occupancy`).
pub fn gpu_metrics(span: &Span) -> (Option<u64>, Option<u64>, Option<u64>, Option<f64>) {
    (
        span.tag(tag_keys::FLOP_COUNT_SP).and_then(|v| v.as_u64()),
        span.tag(tag_keys::DRAM_READ_BYTES).and_then(|v| v.as_u64()),
        span.tag(tag_keys::DRAM_WRITE_BYTES)
            .and_then(|v| v.as_u64()),
        span.tag(tag_keys::ACHIEVED_OCCUPANCY)
            .and_then(|v| v.as_f64()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuilder, TraceId};

    fn span(name: &str, level: StackLevel, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, level, TraceId(1)).start(s).finish(e)
    }

    fn launch(name: &str, cid: u64, s: u64, e: u64, parent: Option<SpanId>) -> Span {
        SpanBuilder::new(name, StackLevel::Kernel, TraceId(1))
            .start(s)
            .maybe_parent(parent)
            .tag(tag_keys::CORRELATION_ID, cid)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .finish(e)
    }

    fn exec(name: &str, cid: u64, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, StackLevel::Kernel, TraceId(1))
            .start(s)
            .tag(tag_keys::CORRELATION_ID, cid)
            .tag(tag_keys::ASYNC_EXECUTION, true)
            .tag(tag_keys::FLOP_COUNT_SP, 1000u64)
            .finish(e)
    }

    #[test]
    fn async_pair_merges_to_execution_timing() {
        let l = launch("cudaLaunchKernel", 7, 100, 110, None);
        let x = exec("convKernel", 7, 150, 400);
        let merged = correlate_async_spans(&[l, x]);
        assert_eq!(merged.len(), 1);
        let m = &merged[0];
        assert_eq!(m.span.start_ns, 150, "execution timing retained");
        assert_eq!(m.launch_interval, Some((100, 110)));
        assert_eq!(m.anchor_interval(), (100, 110));
        assert_eq!(
            m.span.tag(tag_keys::FLOP_COUNT_SP).unwrap().as_u64(),
            Some(1000)
        );
    }

    #[test]
    fn unpaired_halves_pass_through() {
        let l = launch("cudaLaunchKernel", 1, 0, 5, None);
        let x = exec("kernel", 2, 10, 20);
        let merged = correlate_async_spans(&[l, x]);
        assert_eq!(merged.len(), 2, "both unpaired halves kept");
    }

    #[test]
    fn reconstructs_kernel_to_layer_parent() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer1 = span("conv", StackLevel::Layer, 10, 400);
        layer1.parent = Some(mid);
        let l1 = layer1.id;
        let mut layer2 = span("relu", StackLevel::Layer, 420, 800);
        layer2.parent = Some(mid);
        // kernel launched inside layer1, executes way past layer1's end
        let l = launch("cudaLaunchKernel", 9, 50, 60, None);
        let x = exec("volta_scudnn", 9, 500, 900);
        let trace = Trace::from_spans(vec![model, layer1, layer2, l, x]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        let kernel = c
            .spans
            .iter()
            .find(|s| s.span.name == "volta_scudnn")
            .unwrap();
        assert_eq!(
            kernel.parent,
            Some(l1),
            "launch interval must bind kernel to layer1"
        );
    }

    #[test]
    fn explicit_parent_is_preserved() {
        let model = span("predict", StackLevel::Model, 0, 100);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 0, 100);
        layer.parent = Some(mid);
        let trace = Trace::from_spans(vec![model, layer]);
        let c = reconstruct_parents(&trace);
        let l = c.spans.iter().find(|s| s.span.name == "conv").unwrap();
        assert_eq!(l.parent, Some(mid));
    }

    #[test]
    fn skips_missing_levels() {
        // No layer-level spans: kernels bind directly to the model span.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, k]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean());
        let kernel = c.spans.iter().find(|s| s.span.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(mid));
    }

    #[test]
    fn parallel_parents_are_flagged_ambiguous() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut a = span("layerA", StackLevel::Layer, 0, 500);
        a.parent = Some(mid);
        let mut b = span("layerB", StackLevel::Layer, 0, 600); // overlaps A
        b.parent = Some(mid);
        let a_id = a.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, a, b, k]);
        let c = reconstruct_parents(&trace);
        assert!(!c.ambiguities.is_clean());
        assert!(c.ambiguities.needs_serialized_rerun());
        assert_eq!(c.ambiguities.ambiguous.len(), 1);
        // best effort picked the tighter span (layerA)
        let kernel = c.spans.iter().find(|s| s.span.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(a_id));
    }

    #[test]
    fn orphans_are_reported() {
        let model = span("predict", StackLevel::Model, 0, 100);
        let k = span("stray", StackLevel::Kernel, 500, 600); // outside model
        let trace = Trace::from_spans(vec![model, k]);
        let c = reconstruct_parents(&trace);
        assert_eq!(c.ambiguities.orphans.len(), 1);
    }

    #[test]
    fn uncovered_kernel_walks_up_to_model_level() {
        // An H2D copy during pre-processing: layers exist elsewhere in the
        // trace but none contains the copy; it must bind to the model span.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 300, 600);
        layer.parent = Some(mid);
        let copy = span("cudaMemcpyH2D", StackLevel::Kernel, 50, 120);
        let trace = Trace::from_spans(vec![model, layer, copy]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        let m = c
            .spans
            .iter()
            .find(|s| s.span.name == "cudaMemcpyH2D")
            .unwrap();
        assert_eq!(m.parent, Some(mid));
    }

    #[test]
    fn runs_are_correlated_independently() {
        let mut m1 = span("predict", StackLevel::Model, 0, 100);
        m1.trace_id = TraceId(1);
        let mut k1 = span("k", StackLevel::Kernel, 10, 20);
        k1.trace_id = TraceId(1);
        // run 2 overlaps run 1 in virtual time but must not cross-link
        let mut m2 = span("predict", StackLevel::Model, 0, 100);
        m2.trace_id = TraceId(2);
        let m2_id = m2.id;
        let mut k2 = span("k", StackLevel::Kernel, 10, 20);
        k2.trace_id = TraceId(2);
        let m1_id = m1.id;
        let trace = Trace::from_spans(vec![m1, k1, m2, k2]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean());
        let parents: Vec<Option<SpanId>> = c
            .spans
            .iter()
            .filter(|s| s.span.level == StackLevel::Kernel)
            .map(|s| s.parent)
            .collect();
        assert_eq!(parents, vec![Some(m1_id), Some(m2_id)]);
    }

    #[test]
    fn set_tag_overwrites() {
        let mut s = span("x", StackLevel::Kernel, 0, 1);
        set_tag(&mut s, "k", TagValue::U64(1));
        set_tag(&mut s, "k", TagValue::U64(2));
        assert_eq!(s.tag("k").unwrap().as_u64(), Some(2));
        assert_eq!(s.tags.iter().filter(|(k, _)| k == "k").count(), 1);
    }

    #[test]
    fn gpu_metrics_extraction() {
        let s = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(0)
            .tag(tag_keys::FLOP_COUNT_SP, 10u64)
            .tag(tag_keys::DRAM_READ_BYTES, 20u64)
            .tag(tag_keys::DRAM_WRITE_BYTES, 30u64)
            .tag(tag_keys::ACHIEVED_OCCUPANCY, 0.25f64)
            .finish(1);
        assert_eq!(gpu_metrics(&s), (Some(10), Some(20), Some(30), Some(0.25)));
    }
}
