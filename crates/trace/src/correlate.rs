//! Offline trace correlation (§III-A).
//!
//! Two reconstruction problems are solved here:
//!
//! 1. **Async correlation** — asynchronous operations (GPU kernels, async
//!    memcpy) appear as *two* spans: a launch span captured on the CPU
//!    timeline (CUPTI callback API) and an execution span on the GPU timeline
//!    (CUPTI activity API), linked by a `correlation_id` tag. Per the paper,
//!    "XSP uses the launch span's parent as the parent of the asynchronous
//!    function and uses the execution span to get the performance
//!    information". [`correlate_async_spans`] performs that merge.
//!
//! 2. **Parent reconstruction** — profilers at different stack levels cannot
//!    see each other, so e.g. kernel spans arrive without a layer parent.
//!    The [`CorrelationEngine`] builds an [`IntervalTree`] per stack level
//!    and assigns each orphan span the unique span one level up (among
//!    levels present) whose interval contains it. Ambiguities (several
//!    containing candidates, i.e. parallel events) are reported so the
//!    caller can re-run with serialized execution
//!    (`CUDA_LAUNCH_BLOCKING=1`).
//!
//! The engine follows the repository-wide "index once, borrow everywhere"
//! rule: it consumes the drained [`Trace`] (no span is cloned on the hot
//! path), walks each evaluation run exactly once to merge async pairs and
//! bucket span indices per stack level, and builds interval trees *lazily* —
//! a level's tree is constructed on the first probe against it and cached
//! for every later probe in the run. Levels that are never probed (most
//! notably the kernel level, which holds the overwhelming majority of
//! spans but can never be anyone's parent) never pay for tree
//! construction. [`reconstruct_parents`] remains as the thin borrowing
//! wrapper the offline paths and tests use.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::interval::{Interval, IntervalTree};
use crate::server::Trace;
use crate::span::{tag_keys, Span, SpanId, StackLevel, TagValue, TraceId};
use crate::store::{SpanStore, HAS_CID, IS_EXEC, IS_LAUNCH};

/// A span with its resolved parent and, for async operations, the launch
/// interval used during parent matching.
#[derive(Debug, Clone)]
pub struct CorrelatedSpan {
    /// The effective span. For async operations this carries the *execution*
    /// timing (performance information) with tags merged from both halves.
    pub span: Span,
    /// `[start, end]` of the launch span for async operations; parent
    /// matching uses this interval because the execution may slide past the
    /// end of the enclosing layer.
    pub launch_interval: Option<(u64, u64)>,
    /// Resolved parent (explicit or reconstructed).
    pub parent: Option<SpanId>,
}

impl CorrelatedSpan {
    /// The interval used for parent matching: the launch interval for async
    /// spans, the span's own interval otherwise.
    pub fn anchor_interval(&self) -> (u64, u64) {
        self.launch_interval
            .unwrap_or((self.span.start_ns, self.span.end_ns))
    }

    fn passthrough(span: Span) -> Self {
        CorrelatedSpan {
            launch_interval: None,
            parent: span.parent,
            span,
        }
    }
}

/// Ambiguities discovered during parent reconstruction.
#[derive(Debug, Clone, Default)]
pub struct AmbiguityReport {
    /// Spans with more than one containing candidate parent, along with all
    /// candidates. Best-effort resolution picked the tightest interval.
    pub ambiguous: Vec<(SpanId, Vec<SpanId>)>,
    /// Spans below the top level with no containing candidate at the level
    /// above (typically execution spans that slid past their layer when the
    /// launch interval was unavailable).
    pub orphans: Vec<SpanId>,
}

impl AmbiguityReport {
    /// Whether every parent was assigned uniquely.
    pub fn is_clean(&self) -> bool {
        self.ambiguous.is_empty() && self.orphans.is_empty()
    }

    /// Whether a serialized re-run (e.g. `CUDA_LAUNCH_BLOCKING=1`) is needed
    /// to obtain the missing correlation information (§III-A).
    pub fn needs_serialized_rerun(&self) -> bool {
        !self.ambiguous.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: AmbiguityReport) {
        self.ambiguous.extend(other.ambiguous);
        self.orphans.extend(other.orphans);
    }
}

/// A fully correlated trace: every span has a resolved parent (where one
/// exists) and async pairs are merged.
///
/// Like [`Trace`], this is an indexed store: the span table is built once by
/// the [`CorrelationEngine`] together with a `SpanId → index` map, the
/// resolved-parent adjacency, and the root set, so [`CorrelatedTrace::find`]
/// and [`CorrelatedTrace::children_of`] are map lookups instead of linear
/// scans and exporters/analyses borrow views instead of re-deriving them.
/// The span table is private; the only mutation the pipeline needs —
/// re-parenting a span after a serialized re-run — goes through
/// [`CorrelatedTrace::set_parent`], which keeps every index coherent.
#[derive(Debug, Clone, Default)]
pub struct CorrelatedTrace {
    /// Correlated spans in publication order.
    spans: Vec<CorrelatedSpan>,
    /// `SpanId → index` (first occurrence wins).
    index_of: FxHashMap<SpanId, usize>,
    /// Resolved parent → child indices, in appearance order.
    children: FxHashMap<SpanId, Vec<usize>>,
    /// Indices of spans with no parent *present in this trace*, ascending.
    roots: Vec<usize>,
    /// Reconstruction diagnostics.
    pub ambiguities: AmbiguityReport,
}

impl CorrelatedTrace {
    /// Builds the indexed store from correlated spans (used by the engine
    /// and by tests/oracles that assemble traces by hand).
    pub fn new(spans: Vec<CorrelatedSpan>, ambiguities: AmbiguityReport) -> Self {
        let mut index_of = FxHashMap::default();
        index_of.reserve(spans.len());
        for (i, s) in spans.iter().enumerate() {
            index_of.entry(s.span.id).or_insert(i);
        }
        let mut children: FxHashMap<SpanId, Vec<usize>> = FxHashMap::default();
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                Some(p) => {
                    children.entry(p).or_default().push(i);
                    if !index_of.contains_key(&p) {
                        roots.push(i);
                    }
                }
                None => roots.push(i),
            }
        }
        Self {
            spans,
            index_of,
            children,
            roots,
            ambiguities,
        }
    }

    /// All correlated spans, in publication order.
    pub fn spans(&self) -> &[CorrelatedSpan] {
        &self.spans
    }

    /// Iterates the effective [`Span`]s in publication order (the view
    /// exporters stream).
    pub fn iter_spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().map(|s| &s.span)
    }

    /// Spans at the given level.
    pub fn at_level(&self, level: StackLevel) -> impl Iterator<Item = &CorrelatedSpan> {
        self.spans.iter().filter(move |s| s.span.level == level)
    }

    /// Direct children of `parent`, in appearance order.
    pub fn children_of(&self, parent: SpanId) -> Vec<&CorrelatedSpan> {
        self.child_indices(parent)
            .iter()
            .map(|&i| &self.spans[i])
            .collect()
    }

    /// Indices of the direct children of `parent`, in appearance order.
    pub fn child_indices(&self, parent: SpanId) -> &[usize] {
        self.children.get(&parent).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Indices of spans whose parent is unset or absent from this trace
    /// (ascending) — the forest roots exporters traverse from.
    pub fn root_indices(&self) -> &[usize] {
        &self.roots
    }

    /// Finds a span by id through the built-once index map.
    pub fn find(&self, id: SpanId) -> Option<&CorrelatedSpan> {
        self.index_of.get(&id).map(|&i| &self.spans[i])
    }

    /// The index of a span id in the span table.
    pub fn position(&self, id: SpanId) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// Re-parents the span at `idx`, keeping the span table, adjacency and
    /// root set coherent — the pipeline uses this to graft the serialized
    /// re-run's unambiguous kernel→layer assignment onto an async trace.
    pub fn set_parent(&mut self, idx: usize, parent: SpanId) {
        let old = self.spans[idx].parent;
        self.spans[idx].parent = Some(parent);
        self.spans[idx].span.parent = Some(parent);
        if old == Some(parent) {
            return;
        }
        if let Some(p) = old {
            if let Some(v) = self.children.get_mut(&p) {
                v.retain(|&i| i != idx);
            }
        }
        let siblings = self.children.entry(parent).or_default();
        let pos = siblings.partition_point(|&i| i < idx);
        siblings.insert(pos, idx);
        let was_root = match old {
            None => true,
            Some(p) => !self.index_of.contains_key(&p),
        };
        let is_root = !self.index_of.contains_key(&parent);
        if was_root != is_root {
            match self.roots.binary_search(&idx) {
                Ok(pos) if !is_root => {
                    self.roots.remove(pos);
                }
                Err(pos) if is_root => self.roots.insert(pos, idx),
                _ => {}
            }
        }
    }

    /// Total number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// A span's role in async correlation, derived from its tags once per
/// engine pass.
#[derive(Clone, Copy)]
enum AsyncRole {
    /// Launch half of an async pair (`async_launch` only), with its cid.
    Launch(u64),
    /// Execution half (`async_execution` only), with its cid.
    Execution(u64),
    /// No async tags, no cid, or both flags (an already-merged capture).
    Plain,
}

/// Derives a span's async-correlation role — the single definition of the
/// pairing semantics, shared by [`CorrelationEngine`] and
/// [`correlate_async_spans`] so the two paths cannot drift. A span carrying
/// *both* flags is an already-merged pair from a previous correlation
/// (e.g. a re-imported span-JSON-lines capture, where the execution span
/// absorbed the launch's tags); it takes part in no pairing, which makes
/// re-correlation idempotent.
fn async_role(s: &Span) -> AsyncRole {
    match s.correlation_id() {
        Some(cid) => match (s.is_async_launch(), s.is_async_execution()) {
            (true, false) => AsyncRole::Launch(cid),
            (false, true) => AsyncRole::Execution(cid),
            // both flags (already merged) or neither: plain span
            _ => AsyncRole::Plain,
        },
        None => AsyncRole::Plain,
    }
}

/// The launch half of an async pair, captured once during the
/// classification pass so merges borrow it instead of re-scanning.
struct LaunchHalf {
    parent: Option<SpanId>,
    interval: (u64, u64),
    tags: Vec<(String, TagValue)>,
}

/// Reusable correlation state: per-level index buckets and the lazy
/// interval-tree cache.
///
/// One engine correlates one [`Trace`] at a time (any number of evaluation
/// runs) and may be reused across traces — the scratch buffers keep their
/// capacity. Within one run, a level's tree is built on the first probe
/// against that level and cached for the rest of the run: every child level
/// below shares it, so the layer tree is built once for all kernels and
/// library calls, and levels nothing ever probes (the kernel level — the
/// largest — can never be a parent candidate) are never built at all.
/// [`CorrelationEngine::trees_built`] exposes the construction count so
/// tests can pin the laziness.
///
/// # Incremental mode
///
/// Besides the one-shot [`CorrelationEngine::correlate`] /
/// [`CorrelationEngine::correlate_store`] entry points, the engine consumes
/// span batches *as they arrive*: [`CorrelationEngine::push_batch`] routes
/// each span into a sliding window of per-run column stores (keyed by
/// [`TraceId`], first-appearance order), and
/// [`CorrelationEngine::finalize_run`] / [`CorrelationEngine::finalize_all`]
/// run the store-native correlation pass over a window run and retire it.
/// Because async pairing scans a whole run (a launch may precede its
/// execution by an arbitrary number of batches), the run is the finalization
/// unit: peak memory is bounded by the unfinalized window rather than the
/// whole sweep, and correlation work overlaps the evaluation that produces
/// later runs. Finalizing runs in first-appearance order yields output
/// byte-identical to the batch engine (the oracle proptest and goldens pin
/// this).
#[derive(Default)]
pub struct CorrelationEngine {
    /// Per-level span indices of the run being correlated, `StackLevel`
    /// rank as the slot.
    level_buckets: [Vec<usize>; StackLevel::ALL.len()],
    /// Lazily built per-level trees for the run being correlated.
    trees: [Option<IntervalTree>; StackLevel::ALL.len()],
    /// Cumulative count of tree constructions per level (across runs and
    /// traces) — observability for the laziness contract.
    trees_built: [usize; StackLevel::ALL.len()],
    /// Sliding window of unfinalized runs, first-appearance order: spans
    /// pushed incrementally land in a per-run column store (async roles and
    /// run bucketing computed at push), so finalization is exactly one
    /// store-native correlation pass with zero re-classification.
    window: Vec<(TraceId, SpanStore)>,
}

impl CorrelationEngine {
    /// Creates an engine with empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interval trees built at `level` so far.
    pub fn trees_built_at(&self, level: StackLevel) -> usize {
        self.trees_built[level.rank() as usize]
    }

    /// Total number of interval trees built so far.
    pub fn trees_built(&self) -> usize {
        self.trees_built.iter().sum()
    }

    /// Buffers one span into the incremental window, routed by its run id.
    ///
    /// The span lands in that run's column store immediately (names
    /// interned, async role derived from the tags once), so the later
    /// [`CorrelationEngine::finalize_run`] does no per-span work beyond the
    /// correlation pass itself. A push for a run that was already finalized
    /// opens a *fresh* window entry for that id: spans arriving after
    /// finalization correlate among themselves only, exactly as if they
    /// were a new run (the window-eviction hazard tests pin this).
    pub fn push_span(&mut self, span: Span) {
        let tid = span.trace_id;
        // Runs in flight at once are few (the window is the point), so a
        // linear scan beats a map here.
        let slot = match self.window.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                self.window.push((tid, SpanStore::new()));
                self.window.len() - 1
            }
        };
        self.window[slot].1.push_owned(span);
    }

    /// Buffers a batch of spans into the incremental window
    /// ([`CorrelationEngine::push_span`] per span, in order). Batches may
    /// split runs arbitrarily — mid-run, mid-async-pair — and may interleave
    /// runs; only the per-run span order matters for the output.
    pub fn push_batch(&mut self, batch: impl IntoIterator<Item = Span>) {
        for span in batch {
            self.push_span(span);
        }
    }

    /// Run ids currently buffered in the window, first-appearance order —
    /// the order [`CorrelationEngine::finalize_all`] retires them in.
    pub fn pending_runs(&self) -> Vec<TraceId> {
        self.window.iter().map(|(tid, _)| *tid).collect()
    }

    /// Total spans buffered in the window across all pending runs.
    pub fn pending_spans(&self) -> usize {
        self.window.iter().map(|(_, store)| store.len()).sum()
    }

    /// Correlates and retires one window run, freeing its buffered spans.
    ///
    /// Returns `None` when the run id is not in the window (never pushed,
    /// already finalized, or a duplicate flush) — finalization is
    /// idempotent per run. The correlated output is byte-identical to what
    /// the batch engine would emit for this run's spans.
    pub fn finalize_run(&mut self, run: TraceId) -> Option<CorrelatedTrace> {
        let pos = self.window.iter().position(|(tid, _)| *tid == run)?;
        let (_, store) = self.window.remove(pos);
        let mut sc = StoreCorrelation::default();
        self.correlate_store_run(&store, 0, &mut sc);
        Some(sc.materialize(&store))
    }

    /// Correlates and retires every pending window run, first-appearance
    /// order, into one [`CorrelatedTrace`].
    ///
    /// Feeding the engine via [`crate::TracingServer::drain_each`] and
    /// finalizing here produces exactly the bytes of
    /// `engine.correlate(server.drain())`: drained batches arrive grouped
    /// by ascending run id, so window order, per-run span order, and the
    /// per-run correlation pass all coincide with the batch path. An empty
    /// window yields an empty trace.
    pub fn finalize_all(&mut self) -> CorrelatedTrace {
        let window = std::mem::take(&mut self.window);
        let mut spans = Vec::new();
        let mut ambiguities = AmbiguityReport::default();
        for (_, store) in window {
            let mut sc = StoreCorrelation::default();
            self.correlate_store_run(&store, 0, &mut sc);
            spans.extend(sc.materialized_spans(&store));
            ambiguities.merge(sc.ambiguities);
        }
        CorrelatedTrace::new(spans, ambiguities)
    }

    /// Correlates every evaluation run of `trace` — async-pair merge plus
    /// parent reconstruction — consuming the trace so no span is cloned.
    ///
    /// Runs are processed independently in first-appearance order; the
    /// resulting span order, parent assignments and ambiguity report are
    /// identical to correlating each run's sub-trace on its own (the
    /// byte-identity goldens pin this).
    pub fn correlate(&mut self, trace: Trace) -> CorrelatedTrace {
        let mut ambiguities = AmbiguityReport::default();
        let mut out: Vec<CorrelatedSpan> = Vec::with_capacity(trace.len());
        for run in Self::run_buckets(trace) {
            self.correlate_run(run, &mut out, &mut ambiguities);
        }
        CorrelatedTrace::new(out, ambiguities)
    }

    /// Splits a consumed trace into per-run span vectors, first-appearance
    /// order. Single-run traces (the pipeline hot path) move straight
    /// through.
    fn run_buckets(trace: Trace) -> Vec<Vec<Span>> {
        if trace.is_empty() {
            return Vec::new();
        }
        if trace.trace_ids().len() == 1 {
            return vec![trace.into_spans()];
        }
        let (spans, runs) = trace.into_parts();
        let mut slots: Vec<Option<Span>> = spans.into_iter().map(Some).collect();
        runs.into_iter()
            .map(|(_, idxs)| {
                idxs.into_iter()
                    .map(|i| slots[i].take().expect("each span moved once"))
                    .collect()
            })
            .collect()
    }

    /// Correlates one run: a single pass merges async pairs and buckets the
    /// surviving spans per stack level, then parent reconstruction probes
    /// the lazily built level trees.
    fn correlate_run(
        &mut self,
        spans: Vec<Span>,
        out: &mut Vec<CorrelatedSpan>,
        ambiguities: &mut AmbiguityReport,
    ) {
        for bucket in &mut self.level_buckets {
            bucket.clear();
        }
        for tree in &mut self.trees {
            *tree = None;
        }
        let base = out.len();

        // Classification: which correlation ids have a launch half (kept
        // aside for merging) and which have an execution half. The async
        // role of each span is derived from its tags exactly once here —
        // the tag lookups are linear key scans, so re-deriving the role in
        // every later pass would triple the tag-scan cost.
        let mut roles: Vec<AsyncRole> = Vec::with_capacity(spans.len());
        let mut exec_cids: FxHashSet<u64> = FxHashSet::default();
        for s in &spans {
            let role = async_role(s);
            if let AsyncRole::Execution(cid) = role {
                exec_cids.insert(cid);
            }
            roles.push(role);
        }
        // Launch halves are copied aside only when an execution half exists
        // to merge into (the tags copy is needed because one launch may
        // serve several executions); unpaired launches move straight
        // through below, clone-free. The walk is sequential over the span
        // table (cache-friendly) and preserves last-wins cid semantics.
        let mut launches: FxHashMap<u64, LaunchHalf> = FxHashMap::default();
        for (i, s) in spans.iter().enumerate() {
            if let AsyncRole::Launch(cid) = roles[i] {
                if exec_cids.contains(&cid) {
                    launches.insert(
                        cid,
                        LaunchHalf {
                            parent: s.parent,
                            interval: (s.start_ns, s.end_ns),
                            tags: s.tags.clone(),
                        },
                    );
                }
            }
        }

        // Merge pass: spans move into the output table; paired launch halves
        // fold into their execution span (timing from the execution, parent
        // and missing tags from the launch). The per-level index buckets
        // fill as spans land.
        for (i, s) in spans.into_iter().enumerate() {
            let entry = match roles[i] {
                AsyncRole::Execution(cid) => {
                    if let Some(launch) = launches.get(&cid) {
                        let mut merged = s;
                        merged.parent = launch.parent;
                        for (k, v) in &launch.tags {
                            if merged.tag(k).is_none() {
                                merged.tags.push((k.clone(), v.clone()));
                            }
                        }
                        CorrelatedSpan {
                            launch_interval: Some(launch.interval),
                            parent: merged.parent,
                            span: merged,
                        }
                    } else {
                        CorrelatedSpan::passthrough(s)
                    }
                }
                AsyncRole::Launch(cid) => {
                    // Launch halves fold into their execution span; keep
                    // only unpaired launches.
                    if exec_cids.contains(&cid) {
                        continue;
                    }
                    CorrelatedSpan::passthrough(s)
                }
                AsyncRole::Plain => CorrelatedSpan::passthrough(s),
            };
            self.level_buckets[entry.span.level.rank() as usize].push(out.len());
            out.push(entry);
        }

        // Which levels exist in this run, ordered top-to-bottom.
        let levels: Vec<StackLevel> = StackLevel::ALL
            .iter()
            .copied()
            .filter(|l| !self.level_buckets[l.rank() as usize].is_empty())
            .collect();

        for i in base..out.len() {
            if out[i].parent.is_some() {
                continue; // explicit reference wins
            }
            let child_level = out[i].span.level;
            let Some(pos) = levels.iter().position(|l| *l == child_level) else {
                continue;
            };
            if pos == 0 {
                continue; // top level present: no parent expected
            }
            // Candidate intervals, in preference order: the launch interval
            // for async spans ("XSP uses the kernel launch span to associate
            // it with the parent layer span"), then the span's own execution
            // interval — needed when the parent profiler reports
            // device-anchored intervals, as TensorFlow's device tracer does.
            let mut probes: Vec<(u64, u64)> = vec![out[i].anchor_interval()];
            let own = (out[i].span.start_ns, out[i].span.end_ns);
            if probes[0] != own {
                probes.push(own);
            }
            // Search the nearest level above first; when nothing there
            // contains the span (e.g. a memcpy issued during model-level
            // pre-processing, with no enclosing layer), walk further up the
            // stack.
            let mut candidates: Vec<usize> = Vec::new();
            'search: for ancestor in (0..pos).rev() {
                let tree = Self::tree_for(
                    &mut self.trees,
                    &mut self.trees_built,
                    &self.level_buckets,
                    levels[ancestor],
                    out,
                );
                for &(lo, hi) in &probes {
                    candidates = tree.containing(lo, hi).map(|iv| iv.key).collect();
                    // A span never parents itself (possible only with equal
                    // intervals at mixed levels, but be safe).
                    candidates.retain(|&c| c != i);
                    if !candidates.is_empty() {
                        break 'search;
                    }
                }
            }
            match candidates.len() {
                0 => {
                    ambiguities.orphans.push(out[i].span.id);
                }
                1 => {
                    let pid = out[candidates[0]].span.id;
                    out[i].parent = Some(pid);
                    out[i].span.parent = Some(pid);
                }
                _ => {
                    // Best effort: tightest containing interval.
                    let best = *candidates
                        .iter()
                        .min_by_key(|&&c| out[c].span.end_ns - out[c].span.start_ns)
                        .expect("nonempty");
                    let all: Vec<SpanId> = candidates.iter().map(|&c| out[c].span.id).collect();
                    ambiguities.ambiguous.push((out[i].span.id, all));
                    let pid = out[best].span.id;
                    out[i].parent = Some(pid);
                    out[i].span.parent = Some(pid);
                }
            }
        }
    }

    /// Correlates every run of `store` without materializing a single
    /// owned [`Span`] — the columnar twin of
    /// [`CorrelationEngine::correlate`], with identical merge, parent and
    /// ambiguity semantics (the store-vs-span oracle test pins the
    /// equivalence). Async roles come from the store's pre-computed
    /// per-span columns, merged launch tags are arena *references* instead
    /// of clones, and parents/intervals are column reads, so the pass
    /// performs no per-span allocation at all.
    pub fn correlate_store(&mut self, store: &SpanStore) -> StoreCorrelation {
        let mut out = StoreCorrelation {
            entries: Vec::with_capacity(store.len()),
            extra_tags: Vec::new(),
            ambiguities: AmbiguityReport::default(),
        };
        for run in 0..store.run_buckets().len() {
            self.correlate_store_run(store, run, &mut out);
        }
        out
    }

    /// Store-native twin of [`CorrelationEngine::correlate_run`]; every
    /// step mirrors the span-based pass index-for-index.
    fn correlate_store_run(&mut self, store: &SpanStore, run: usize, out: &mut StoreCorrelation) {
        for bucket in &mut self.level_buckets {
            bucket.clear();
        }
        for tree in &mut self.trees {
            *tree = None;
        }
        let base = out.entries.len();
        let idxs: &[u32] = &store.run_buckets()[run].1;

        // Classification from the pre-computed async columns — the same
        // facts `async_role` derives from tags, without the tag walk.
        let mut roles: Vec<AsyncRole> = Vec::with_capacity(idxs.len());
        let mut exec_cids: FxHashSet<u64> = FxHashSet::default();
        for &si in idxs {
            let info = store.async_info(si);
            let role = if info.flags & HAS_CID != 0 {
                match (info.flags & IS_LAUNCH != 0, info.flags & IS_EXEC != 0) {
                    (true, false) => AsyncRole::Launch(info.cid),
                    (false, true) => AsyncRole::Execution(info.cid),
                    _ => AsyncRole::Plain,
                }
            } else {
                AsyncRole::Plain
            };
            if let AsyncRole::Execution(cid) = role {
                exec_cids.insert(cid);
            }
            roles.push(role);
        }
        // Launch halves kept aside when paired — by store index, no tag
        // clone (the merged tags stay arena references).
        struct StoreLaunch {
            parent: Option<SpanId>,
            interval: (u64, u64),
            span: u32,
        }
        let mut launches: FxHashMap<u64, StoreLaunch> = FxHashMap::default();
        for (j, &si) in idxs.iter().enumerate() {
            if let AsyncRole::Launch(cid) = roles[j] {
                if exec_cids.contains(&cid) {
                    launches.insert(
                        cid,
                        StoreLaunch {
                            parent: store.parent_at(si),
                            interval: store.interval_at(si),
                            span: si,
                        },
                    );
                }
            }
        }

        // Merge pass: paired launches fold into their execution entry
        // (timing from the execution, parent and missing tags from the
        // launch — "missing" judged against the execution's tags plus the
        // extras appended so far, exactly like the growing `merged.tags`).
        for (j, &si) in idxs.iter().enumerate() {
            let entry = match roles[j] {
                AsyncRole::Execution(cid) => {
                    if let Some(launch) = launches.get(&cid) {
                        let extras_start = out.extra_tags.len();
                        let exec_tags = store.tag_range(si);
                        for lt in store.tag_range(launch.span) {
                            let key = store.tag_key_at(lt);
                            let present = exec_tags.clone().any(|t| store.tag_key_at(t) == key)
                                || out.extra_tags[extras_start..]
                                    .iter()
                                    .any(|&e| store.tag_key_at(e as usize) == key);
                            if !present {
                                out.extra_tags.push(lt as u32);
                            }
                        }
                        StoreEntry {
                            span: si,
                            parent: launch.parent,
                            launch_interval: Some(launch.interval),
                            extras: (
                                extras_start as u32,
                                (out.extra_tags.len() - extras_start) as u32,
                            ),
                        }
                    } else {
                        StoreEntry::passthrough(store, si)
                    }
                }
                AsyncRole::Launch(cid) => {
                    if exec_cids.contains(&cid) {
                        continue;
                    }
                    StoreEntry::passthrough(store, si)
                }
                AsyncRole::Plain => StoreEntry::passthrough(store, si),
            };
            self.level_buckets[store.level_at(si).rank() as usize].push(out.entries.len());
            out.entries.push(entry);
        }

        let levels: Vec<StackLevel> = StackLevel::ALL
            .iter()
            .copied()
            .filter(|l| !self.level_buckets[l.rank() as usize].is_empty())
            .collect();

        for i in base..out.entries.len() {
            if out.entries[i].parent.is_some() {
                continue;
            }
            let si = out.entries[i].span;
            let child_level = store.level_at(si);
            let Some(pos) = levels.iter().position(|l| *l == child_level) else {
                continue;
            };
            if pos == 0 {
                continue;
            }
            let own = store.interval_at(si);
            let mut probes: Vec<(u64, u64)> = vec![out.entries[i].launch_interval.unwrap_or(own)];
            if probes[0] != own {
                probes.push(own);
            }
            let mut candidates: Vec<usize> = Vec::new();
            'search: for ancestor in (0..pos).rev() {
                let tree = Self::tree_for_store(
                    &mut self.trees,
                    &mut self.trees_built,
                    &self.level_buckets,
                    levels[ancestor],
                    store,
                    &out.entries,
                );
                for &(lo, hi) in &probes {
                    candidates = tree.containing(lo, hi).map(|iv| iv.key).collect();
                    candidates.retain(|&c| c != i);
                    if !candidates.is_empty() {
                        break 'search;
                    }
                }
            }
            match candidates.len() {
                0 => {
                    out.ambiguities.orphans.push(store.id_at(si));
                }
                1 => {
                    out.entries[i].parent = Some(store.id_at(out.entries[candidates[0]].span));
                }
                _ => {
                    let best = *candidates
                        .iter()
                        .min_by_key(|&&c| {
                            let (s, e) = store.interval_at(out.entries[c].span);
                            e - s
                        })
                        .expect("nonempty");
                    let all: Vec<SpanId> = candidates
                        .iter()
                        .map(|&c| store.id_at(out.entries[c].span))
                        .collect();
                    out.ambiguities.ambiguous.push((store.id_at(si), all));
                    out.entries[i].parent = Some(store.id_at(out.entries[best].span));
                }
            }
        }
    }

    /// [`CorrelationEngine::tree_for`] over store entries: intervals come
    /// from the store's timestamp columns (execution timing, matching the
    /// span-based pass).
    fn tree_for_store<'t>(
        trees: &'t mut [Option<IntervalTree>; StackLevel::ALL.len()],
        trees_built: &mut [usize; StackLevel::ALL.len()],
        level_buckets: &[Vec<usize>; StackLevel::ALL.len()],
        level: StackLevel,
        store: &SpanStore,
        entries: &[StoreEntry],
    ) -> &'t IntervalTree {
        let rank = level.rank() as usize;
        if trees[rank].is_none() {
            let intervals: Vec<Interval> = level_buckets[rank]
                .iter()
                .map(|&i| {
                    let (s, e) = store.interval_at(entries[i].span);
                    Interval::new(s, e, i)
                })
                .collect();
            trees_built[rank] += 1;
            trees[rank] = Some(IntervalTree::build(intervals));
        }
        trees[rank].as_ref().expect("just built")
    }

    /// Returns the interval tree for `level`, building it on first use from
    /// the run's level bucket. A free function over the split-borrowed
    /// fields so the caller can keep reading `out` while the tree is alive.
    fn tree_for<'t>(
        trees: &'t mut [Option<IntervalTree>; StackLevel::ALL.len()],
        trees_built: &mut [usize; StackLevel::ALL.len()],
        level_buckets: &[Vec<usize>; StackLevel::ALL.len()],
        level: StackLevel,
        out: &[CorrelatedSpan],
    ) -> &'t IntervalTree {
        let rank = level.rank() as usize;
        if trees[rank].is_none() {
            let intervals: Vec<Interval> = level_buckets[rank]
                .iter()
                .map(|&i| Interval::new(out[i].span.start_ns, out[i].span.end_ns, i))
                .collect();
            trees_built[rank] += 1;
            trees[rank] = Some(IntervalTree::build(intervals));
        }
        trees[rank].as_ref().expect("just built")
    }
}

/// One correlated span in a [`StoreCorrelation`]: a store index plus the
/// correlation results (resolved parent, launch interval of a merged async
/// pair, and any launch tags folded in — kept as arena references, not
/// clones).
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// Index of the underlying span in the correlated [`SpanStore`].
    pub span: u32,
    /// Parent after correlation: the span's own explicit parent, the
    /// merged launch's parent, or a reconstructed one.
    pub parent: Option<SpanId>,
    /// `(start_ns, end_ns)` of the merged launch half, when this entry is
    /// a correlated async pair.
    pub launch_interval: Option<(u64, u64)>,
    /// `(start, len)` range into the correlation's extra-tag arena.
    extras: (u32, u32),
}

impl StoreEntry {
    /// An entry that passes the store span through unchanged.
    fn passthrough(store: &SpanStore, si: u32) -> Self {
        StoreEntry {
            span: si,
            parent: store.parent_at(si),
            launch_interval: None,
            extras: (0, 0),
        }
    }
}

/// The result of [`CorrelationEngine::correlate_store`]: correlation
/// verdicts over a [`SpanStore`], without any owned [`Span`]s.
///
/// Entries reference spans by store index; merged launch tags are indices
/// into the store's tag arena. [`StoreCorrelation::materialize`] converts
/// the result into the owned [`CorrelatedTrace`] the analysis and export
/// layers consume — the output is identical to running
/// [`CorrelationEngine::correlate`] on the materialized spans (pinned by
/// the oracle test), but the correlation pass itself touched only columns.
#[derive(Debug, Default)]
pub struct StoreCorrelation {
    entries: Vec<StoreEntry>,
    /// Arena indices (into the store's tag arena) of launch tags merged
    /// into execution entries; sliced per entry via `StoreEntry::extras`.
    extra_tags: Vec<u32>,
    /// Parent reconstructions that failed or were ambiguous.
    pub ambiguities: AmbiguityReport,
}

impl StoreCorrelation {
    /// Number of correlated entries (merged async pairs count once).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no spans were correlated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The correlated entries, in the same order the span-based engine
    /// would emit them.
    pub fn entries(&self) -> &[StoreEntry] {
        &self.entries
    }

    /// The launch tags merged into `entry`, as `(key, value)` pairs
    /// resolved from the store's arena.
    pub fn extra_tags_of<'s>(
        &'s self,
        entry: &StoreEntry,
        store: &'s SpanStore,
    ) -> impl Iterator<Item = (String, TagValue)> + 's {
        let (start, len) = entry.extras;
        self.extra_tags[start as usize..(start + len) as usize]
            .iter()
            .map(move |&arena| store.tag_pair_at(arena as usize))
    }

    /// Materializes the correlation into an owned [`CorrelatedTrace`],
    /// byte-equivalent to the span-based engine's output: each entry's span
    /// is rebuilt from the store with the correlated parent applied and any
    /// merged launch tags appended in launch order.
    pub fn materialize(&self, store: &SpanStore) -> CorrelatedTrace {
        CorrelatedTrace::new(self.materialized_spans(store), self.ambiguities.clone())
    }

    /// The owned correlated spans of [`StoreCorrelation::materialize`],
    /// without the trace indexing — callers concatenating several per-run
    /// correlations (the incremental window, the daemon's cached prefix)
    /// collect these and index once at the end.
    fn materialized_spans(&self, store: &SpanStore) -> Vec<CorrelatedSpan> {
        self.entries
            .iter()
            .map(|entry| {
                let mut span = store.materialize(entry.span);
                span.parent = entry.parent;
                span.tags.extend(self.extra_tags_of(entry, store));
                CorrelatedSpan {
                    parent: entry.parent,
                    launch_interval: entry.launch_interval,
                    span,
                }
            })
            .collect()
    }
}

/// One run's cached correlation: the run id and span count it was computed
/// at, plus the verdicts themselves.
struct CachedRun {
    trace_id: TraceId,
    /// Span count of the run bucket when the correlation was computed; a
    /// grown bucket invalidates this entry (runs are append-only, so a
    /// matching `(trace_id, len)` pair means an identical bucket).
    len: usize,
    correlation: StoreCorrelation,
}

/// A per-run correlation cache over an append-only [`SpanStore`] — the
/// "finalized prefix" that makes repeat exports O(new spans).
///
/// [`StoreCorrelationCache::refresh`] walks the store's run buckets and
/// re-correlates only the runs whose span count changed since the last
/// refresh (runs are append-only: a bucket with the same run id and length
/// is bit-identical, so its cached verdicts still hold). The daemon's
/// resident sessions keep one of these per session: an `Export` request
/// with no new spans re-correlates nothing at all, and one that appended
/// spans to a single run pays exactly one correlation pass.
///
/// The cache is keyed by position, so it must be [`invalidate`]d whenever
/// the underlying store is rebuilt or cleared (e.g. after a quota spill) —
/// store indices restart from zero and a positional comparison would
/// wrongly validate stale entries.
///
/// [`invalidate`]: StoreCorrelationCache::invalidate
#[derive(Default)]
pub struct StoreCorrelationCache {
    runs: Vec<CachedRun>,
    passes: usize,
}

impl StoreCorrelationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of per-run correlation passes executed so far — the
    /// observability hook behind the daemon's O(new-spans) export contract
    /// (a repeat export with nothing new must not move this counter).
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Number of runs currently cached.
    pub fn runs_cached(&self) -> usize {
        self.runs.len()
    }

    /// Drops every cached run. Call when the underlying store's indices
    /// are no longer those the cache was computed against (the store was
    /// cleared or rebuilt).
    pub fn invalidate(&mut self) {
        self.runs.clear();
    }

    /// Brings the cache up to date with `store`: cached runs whose id and
    /// span count still match are kept verbatim; everything from the first
    /// divergence on is re-correlated through `engine` (one pass per run).
    pub fn refresh(&mut self, engine: &mut CorrelationEngine, store: &SpanStore) {
        let buckets = store.run_buckets();
        let valid = self
            .runs
            .iter()
            .zip(buckets)
            .take_while(|(cached, (tid, idxs))| cached.trace_id == *tid && cached.len == idxs.len())
            .count();
        self.runs.truncate(valid);
        for (run, (tid, idxs)) in buckets.iter().enumerate().skip(valid) {
            let mut correlation = StoreCorrelation::default();
            engine.correlate_store_run(store, run, &mut correlation);
            self.passes += 1;
            self.runs.push(CachedRun {
                trace_id: *tid,
                len: idxs.len(),
                correlation,
            });
        }
    }

    /// Materializes the cached correlations, in run order, into one
    /// [`CorrelatedTrace`] — identical to
    /// `engine.correlate_store(store).materialize(store)` (runs correlate
    /// independently and the cache preserves bucket order), but only the
    /// refresh paid correlation cost.
    pub fn materialize(&self, store: &SpanStore) -> CorrelatedTrace {
        let mut spans = Vec::new();
        let mut ambiguities = AmbiguityReport::default();
        for run in &self.runs {
            spans.extend(run.correlation.materialized_spans(store));
            ambiguities.merge(run.correlation.ambiguities.clone());
        }
        CorrelatedTrace::new(spans, ambiguities)
    }
}

/// Merges async launch/execution span pairs by correlation id.
///
/// Returns correlated spans where each async pair became a single entry
/// (execution timing + merged tags + launch parent/interval) plus all
/// non-async spans unchanged. Unpaired halves are passed through unchanged —
/// a launch whose kernel never ran, or an execution record whose callback was
/// dropped, must stay visible to the analysis. A span carrying *both* async
/// flags is an already-merged pair (a re-imported capture) and passes
/// through untouched, so correlation is idempotent.
///
/// This is the borrowing single-step API; the pipeline itself goes through
/// [`CorrelationEngine::correlate`], which performs the same merge without
/// cloning spans.
pub fn correlate_async_spans(spans: &[Span]) -> Vec<CorrelatedSpan> {
    let mut launches: FxHashMap<u64, &Span> = FxHashMap::default();
    let mut exec_cids: FxHashSet<u64> = FxHashSet::default();
    for s in spans {
        match async_role(s) {
            AsyncRole::Launch(cid) => {
                launches.insert(cid, s);
            }
            AsyncRole::Execution(cid) => {
                exec_cids.insert(cid);
            }
            AsyncRole::Plain => {}
        }
    }

    let mut out = Vec::with_capacity(spans.len());
    for s in spans {
        match async_role(s) {
            AsyncRole::Execution(cid) => {
                if let Some(launch) = launches.get(&cid) {
                    // Merge: execution timing, union of tags, launch parent.
                    let mut merged = s.clone();
                    merged.parent = launch.parent;
                    for (k, v) in &launch.tags {
                        if merged.tag(k).is_none() {
                            merged.tags.push((k.clone(), v.clone()));
                        }
                    }
                    out.push(CorrelatedSpan {
                        launch_interval: Some((launch.start_ns, launch.end_ns)),
                        parent: merged.parent,
                        span: merged,
                    });
                } else {
                    out.push(CorrelatedSpan::passthrough(s.clone()));
                }
            }
            AsyncRole::Launch(cid) => {
                // Launch halves are folded into their execution span; keep
                // only unpaired launches.
                if !exec_cids.contains(&cid) {
                    out.push(CorrelatedSpan::passthrough(s.clone()));
                }
            }
            AsyncRole::Plain => out.push(CorrelatedSpan::passthrough(s.clone())),
        }
    }
    out
}

/// Reconstructs the parent of every span lacking an explicit reference, per
/// evaluation run, and returns the correlated trace.
///
/// For each stack level present in the trace, candidate parents for a child
/// at level `L` are spans at the *nearest* level above `L` that is present.
/// A unique containing candidate becomes the parent. Multiple candidates are
/// recorded in the [`AmbiguityReport`] (best-effort: tightest containing
/// interval wins), mirroring the paper's requirement of a serialized re-run
/// for parallel events.
///
/// This is the borrowing wrapper over [`CorrelationEngine::correlate`] (one
/// clone of the span table); callers that own their [`Trace`] should feed
/// the engine directly and pay no clone at all.
pub fn reconstruct_parents(trace: &Trace) -> CorrelatedTrace {
    CorrelationEngine::new().correlate(trace.clone_parts())
}

/// Convenience: attaches a numeric tag to a span (used by adapters when
/// merging metric values post-hoc).
pub fn set_tag(span: &mut Span, key: &str, value: TagValue) {
    if let Some(slot) = span.tags.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    } else {
        span.tags.push((key.to_owned(), value));
    }
}

/// Extracts a named metric tag as `f64` from a span, if present.
pub fn metric_f64(span: &Span, key: &str) -> Option<f64> {
    span.tag(key).and_then(|v| v.as_f64())
}

/// Extracts the standard GPU metric tags (`flop_count_sp`,
/// `dram_read_bytes`, `dram_write_bytes`, `achieved_occupancy`).
pub fn gpu_metrics(span: &Span) -> (Option<u64>, Option<u64>, Option<u64>, Option<f64>) {
    (
        span.tag(tag_keys::FLOP_COUNT_SP).and_then(|v| v.as_u64()),
        span.tag(tag_keys::DRAM_READ_BYTES).and_then(|v| v.as_u64()),
        span.tag(tag_keys::DRAM_WRITE_BYTES)
            .and_then(|v| v.as_u64()),
        span.tag(tag_keys::ACHIEVED_OCCUPANCY)
            .and_then(|v| v.as_f64()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuilder, TraceId};

    fn span(name: &str, level: StackLevel, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, level, TraceId(1)).start(s).finish(e)
    }

    fn launch(name: &str, cid: u64, s: u64, e: u64, parent: Option<SpanId>) -> Span {
        SpanBuilder::new(name, StackLevel::Kernel, TraceId(1))
            .start(s)
            .maybe_parent(parent)
            .tag(tag_keys::CORRELATION_ID, cid)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .finish(e)
    }

    fn exec(name: &str, cid: u64, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, StackLevel::Kernel, TraceId(1))
            .start(s)
            .tag(tag_keys::CORRELATION_ID, cid)
            .tag(tag_keys::ASYNC_EXECUTION, true)
            .tag(tag_keys::FLOP_COUNT_SP, 1000u64)
            .finish(e)
    }

    #[test]
    fn async_pair_merges_to_execution_timing() {
        let l = launch("cudaLaunchKernel", 7, 100, 110, None);
        let x = exec("convKernel", 7, 150, 400);
        let merged = correlate_async_spans(&[l, x]);
        assert_eq!(merged.len(), 1);
        let m = &merged[0];
        assert_eq!(m.span.start_ns, 150, "execution timing retained");
        assert_eq!(m.launch_interval, Some((100, 110)));
        assert_eq!(m.anchor_interval(), (100, 110));
        assert_eq!(
            m.span.tag(tag_keys::FLOP_COUNT_SP).unwrap().as_u64(),
            Some(1000)
        );
    }

    #[test]
    fn unpaired_halves_pass_through() {
        let l = launch("cudaLaunchKernel", 1, 0, 5, None);
        let x = exec("kernel", 2, 10, 20);
        let merged = correlate_async_spans(&[l, x]);
        assert_eq!(merged.len(), 2, "both unpaired halves kept");
    }

    #[test]
    fn reconstructs_kernel_to_layer_parent() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer1 = span("conv", StackLevel::Layer, 10, 400);
        layer1.parent = Some(mid);
        let l1 = layer1.id;
        let mut layer2 = span("relu", StackLevel::Layer, 420, 800);
        layer2.parent = Some(mid);
        // kernel launched inside layer1, executes way past layer1's end
        let l = launch("cudaLaunchKernel", 9, 50, 60, None);
        let x = exec("volta_scudnn", 9, 500, 900);
        let trace = Trace::from_spans(vec![model, layer1, layer2, l, x]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        let kernel = c
            .spans()
            .iter()
            .find(|s| s.span.name == "volta_scudnn")
            .unwrap();
        assert_eq!(
            kernel.parent,
            Some(l1),
            "launch interval must bind kernel to layer1"
        );
    }

    #[test]
    fn explicit_parent_is_preserved() {
        let model = span("predict", StackLevel::Model, 0, 100);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 0, 100);
        layer.parent = Some(mid);
        let trace = Trace::from_spans(vec![model, layer]);
        let c = reconstruct_parents(&trace);
        let l = c.spans().iter().find(|s| s.span.name == "conv").unwrap();
        assert_eq!(l.parent, Some(mid));
    }

    #[test]
    fn skips_missing_levels() {
        // No layer-level spans: kernels bind directly to the model span.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, k]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean());
        let kernel = c.spans().iter().find(|s| s.span.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(mid));
    }

    #[test]
    fn parallel_parents_are_flagged_ambiguous() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut a = span("layerA", StackLevel::Layer, 0, 500);
        a.parent = Some(mid);
        let mut b = span("layerB", StackLevel::Layer, 0, 600); // overlaps A
        b.parent = Some(mid);
        let a_id = a.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, a, b, k]);
        let c = reconstruct_parents(&trace);
        assert!(!c.ambiguities.is_clean());
        assert!(c.ambiguities.needs_serialized_rerun());
        assert_eq!(c.ambiguities.ambiguous.len(), 1);
        // best effort picked the tighter span (layerA)
        let kernel = c.spans().iter().find(|s| s.span.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(a_id));
    }

    #[test]
    fn orphans_are_reported() {
        let model = span("predict", StackLevel::Model, 0, 100);
        let k = span("stray", StackLevel::Kernel, 500, 600); // outside model
        let trace = Trace::from_spans(vec![model, k]);
        let c = reconstruct_parents(&trace);
        assert_eq!(c.ambiguities.orphans.len(), 1);
    }

    #[test]
    fn uncovered_kernel_walks_up_to_model_level() {
        // An H2D copy during pre-processing: layers exist elsewhere in the
        // trace but none contains the copy; it must bind to the model span.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 300, 600);
        layer.parent = Some(mid);
        let copy = span("cudaMemcpyH2D", StackLevel::Kernel, 50, 120);
        let trace = Trace::from_spans(vec![model, layer, copy]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        let m = c
            .spans()
            .iter()
            .find(|s| s.span.name == "cudaMemcpyH2D")
            .unwrap();
        assert_eq!(m.parent, Some(mid));
    }

    #[test]
    fn runs_are_correlated_independently() {
        let mut m1 = span("predict", StackLevel::Model, 0, 100);
        m1.trace_id = TraceId(1);
        let mut k1 = span("k", StackLevel::Kernel, 10, 20);
        k1.trace_id = TraceId(1);
        // run 2 overlaps run 1 in virtual time but must not cross-link
        let mut m2 = span("predict", StackLevel::Model, 0, 100);
        m2.trace_id = TraceId(2);
        let m2_id = m2.id;
        let mut k2 = span("k", StackLevel::Kernel, 10, 20);
        k2.trace_id = TraceId(2);
        let m1_id = m1.id;
        let trace = Trace::from_spans(vec![m1, k1, m2, k2]);
        let c = reconstruct_parents(&trace);
        assert!(c.ambiguities.is_clean());
        let parents: Vec<Option<SpanId>> = c
            .spans()
            .iter()
            .filter(|s| s.span.level == StackLevel::Kernel)
            .map(|s| s.parent)
            .collect();
        assert_eq!(parents, vec![Some(m1_id), Some(m2_id)]);
    }

    #[test]
    fn kernel_level_tree_is_never_built() {
        // The laziness contract behind the hot-path win: the kernel level
        // holds the bulk of the spans but can never be a parent candidate,
        // so its interval tree must never be constructed.
        let model = span("predict", StackLevel::Model, 0, 100_000);
        let mid = model.id;
        let mut spans = vec![model];
        for i in 0..50u64 {
            let mut layer = span("conv", StackLevel::Layer, i * 1000, i * 1000 + 900);
            layer.parent = Some(mid);
            spans.push(layer);
        }
        for i in 0..500u64 {
            let at = (i % 50) * 1000;
            spans.push(launch("cudaLaunchKernel", i, at + 10, at + 20, None));
            spans.push(exec("volta_kernel", i, at + 30, at + 800));
        }
        let mut engine = CorrelationEngine::new();
        let c = engine.correlate(Trace::from_spans(spans));
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        assert_eq!(
            engine.trees_built_at(StackLevel::Kernel),
            0,
            "kernel tree must stay lazy"
        );
        assert_eq!(engine.trees_built_at(StackLevel::Layer), 1);
        assert_eq!(
            engine.trees_built_at(StackLevel::Model),
            0,
            "every kernel found a layer, so the model tree is never probed"
        );
    }

    #[test]
    fn engine_scratch_is_reusable_across_traces() {
        let mk = || {
            let model = span("predict", StackLevel::Model, 0, 1000);
            let k = span("kernel", StackLevel::Kernel, 100, 200);
            Trace::from_spans(vec![model, k])
        };
        let mut engine = CorrelationEngine::new();
        let a = engine.correlate(mk());
        let b = engine.correlate(mk());
        assert_eq!(a.len(), b.len());
        assert!(b.ambiguities.is_clean());
        assert_eq!(engine.trees_built_at(StackLevel::Model), 2);
    }

    #[test]
    fn indexed_lookups_match_linear_semantics() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 10, 400);
        layer.parent = Some(mid);
        let lid = layer.id;
        let k1 = span("k1", StackLevel::Kernel, 20, 100);
        let k2 = span("k2", StackLevel::Kernel, 120, 300);
        let trace = Trace::from_spans(vec![model, layer, k1, k2]);
        let c = reconstruct_parents(&trace);
        assert_eq!(c.find(lid).unwrap().span.name, "conv");
        assert_eq!(c.position(lid), Some(1));
        let kids = c.children_of(lid);
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].span.name, "k1");
        assert_eq!(kids[1].span.name, "k2");
        assert_eq!(c.root_indices(), &[0], "only the model span is a root");
    }

    #[test]
    fn set_parent_keeps_indexes_coherent() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut a = span("layerA", StackLevel::Layer, 0, 400);
        a.parent = Some(mid);
        let a_id = a.id;
        let mut b = span("layerB", StackLevel::Layer, 500, 900);
        b.parent = Some(mid);
        let b_id = b.id;
        let k = span("kernel", StackLevel::Kernel, 100, 200);
        let trace = Trace::from_spans(vec![model, a, b, k]);
        let mut c = reconstruct_parents(&trace);
        let kidx = c.position(c.spans()[3].span.id).unwrap();
        assert_eq!(c.spans()[kidx].parent, Some(a_id));
        c.set_parent(kidx, b_id);
        assert_eq!(c.spans()[kidx].parent, Some(b_id));
        assert_eq!(c.spans()[kidx].span.parent, Some(b_id));
        assert!(c.children_of(a_id).is_empty());
        assert_eq!(c.children_of(b_id).len(), 1);
        assert_eq!(c.root_indices(), &[0]);
        // re-parenting to an absent span makes it a root
        c.set_parent(kidx, SpanId(u64::MAX));
        assert_eq!(c.root_indices(), &[0, kidx]);
    }

    #[test]
    fn set_tag_overwrites() {
        let mut s = span("x", StackLevel::Kernel, 0, 1);
        set_tag(&mut s, "k", TagValue::U64(1));
        set_tag(&mut s, "k", TagValue::U64(2));
        assert_eq!(s.tag("k").unwrap().as_u64(), Some(2));
        assert_eq!(s.tags.iter().filter(|(k, _)| k == "k").count(), 1);
    }

    #[test]
    fn gpu_metrics_extraction() {
        let s = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(0)
            .tag(tag_keys::FLOP_COUNT_SP, 10u64)
            .tag(tag_keys::DRAM_READ_BYTES, 20u64)
            .tag(tag_keys::DRAM_WRITE_BYTES, 30u64)
            .tag(tag_keys::ACHIEVED_OCCUPANCY, 0.25f64)
            .finish(1);
        assert_eq!(gpu_metrics(&s), (Some(10), Some(20), Some(30), Some(0.25)));
    }

    /// Asserts the store pass and the span pass produced identical results:
    /// same spans (ids, parents, timing, tags in order), same launch
    /// intervals, same ambiguity report.
    fn assert_matches_span_engine(spans: Vec<Span>) {
        let expected = CorrelationEngine::new().correlate(Trace::from_spans(spans.clone()));
        let store = crate::store::SpanStore::from_spans(&spans);
        let got = CorrelationEngine::new()
            .correlate_store(&store)
            .materialize(&store);
        assert_eq!(got.len(), expected.len(), "entry counts diverge");
        for (g, e) in got.spans().iter().zip(expected.spans()) {
            assert_eq!(g.span, e.span, "materialized span diverges");
            assert_eq!(g.parent, e.parent, "parent diverges for {:?}", e.span.name);
            assert_eq!(
                g.launch_interval, e.launch_interval,
                "launch interval diverges for {:?}",
                e.span.name
            );
        }
        assert_eq!(
            got.ambiguities.ambiguous, expected.ambiguities.ambiguous,
            "ambiguous sets diverge"
        );
        assert_eq!(
            got.ambiguities.orphans, expected.ambiguities.orphans,
            "orphan sets diverge"
        );
    }

    #[test]
    fn store_pass_matches_span_engine_on_async_merge() {
        // Launch carries tags the execution is missing (merged, in launch
        // order), one it already has (skipped), and a duplicate key within
        // the launch itself (first wins, second skipped via the growing
        // extras check).
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut layer = span("conv", StackLevel::Layer, 10, 400);
        layer.parent = Some(mid);
        let l = SpanBuilder::new("cudaLaunchKernel", StackLevel::Kernel, TraceId(1))
            .start(50)
            .tag(tag_keys::CORRELATION_ID, 9u64)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .tag("grid", "128x1x1")
            .tag(tag_keys::FLOP_COUNT_SP, 5u64) // exec already has it
            .tag("grid", "shadowed") // duplicate key inside launch
            .tag("stream", 3i64)
            .finish(60);
        let x = exec("volta_scudnn", 9, 500, 900);
        assert_matches_span_engine(vec![model, layer, l, x]);
    }

    #[test]
    fn store_pass_matches_span_engine_on_unpaired_and_both_flag_spans() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let lone_launch = launch("cudaLaunchKernel", 1, 10, 20, None);
        let lone_exec = exec("kernel", 2, 30, 40);
        // Both flags set: an already-merged pair, passes through untouched.
        let premerged = SpanBuilder::new("merged", StackLevel::Kernel, TraceId(1))
            .start(100)
            .tag(tag_keys::CORRELATION_ID, 3u64)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .tag(tag_keys::ASYNC_EXECUTION, true)
            .finish(200)
            .clone();
        assert_matches_span_engine(vec![model, lone_launch, lone_exec, premerged]);
    }

    #[test]
    fn store_pass_matches_span_engine_on_ambiguity_and_orphans() {
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mid = model.id;
        let mut a = span("layerA", StackLevel::Layer, 0, 500);
        a.parent = Some(mid);
        let mut b = span("layerB", StackLevel::Layer, 0, 600); // overlaps A
        b.parent = Some(mid);
        let k = span("kernel", StackLevel::Kernel, 100, 200); // ambiguous
        let stray = span("stray", StackLevel::Kernel, 5000, 6000); // orphan
        assert_matches_span_engine(vec![model, a, b, k, stray]);
    }

    #[test]
    fn store_pass_matches_span_engine_across_runs() {
        // Two interleaved runs plus an async pair per run; runs must stay
        // independent in both passes.
        let mut spans = Vec::new();
        for tid in [1u64, 2] {
            let mut m = span("predict", StackLevel::Model, 0, 1000);
            m.trace_id = TraceId(tid);
            let mid = m.id;
            let mut layer = span("conv", StackLevel::Layer, 10, 400);
            layer.trace_id = TraceId(tid);
            layer.parent = Some(mid);
            let mut l = launch("cudaLaunchKernel", 40 + tid, 50, 60, None);
            l.trace_id = TraceId(tid);
            let mut x = exec("volta", 40 + tid, 450, 900);
            x.trace_id = TraceId(tid);
            spans.extend([m, layer, l, x]);
        }
        // Interleave publication order across the two runs.
        spans.swap(1, 5);
        assert_matches_span_engine(spans);
    }

    /// Batch-engine oracle for the incremental API: pushing `spans` in the
    /// given batch splits and finalizing everything must reproduce
    /// `correlate(Trace::from_spans(spans))` exactly — spans, parents,
    /// launch intervals, ambiguity report.
    fn assert_incremental_matches_batch(spans: Vec<Span>, splits: &[usize]) {
        let expected = CorrelationEngine::new().correlate(Trace::from_spans(spans.clone()));
        let mut engine = CorrelationEngine::new();
        let mut rest = spans;
        for &at in splits {
            let at = at.min(rest.len());
            let tail = rest.split_off(at);
            engine.push_batch(rest);
            rest = tail;
        }
        engine.push_batch(rest);
        let got = engine.finalize_all();
        assert_eq!(got.len(), expected.len(), "span counts diverge");
        for (g, e) in got.spans().iter().zip(expected.spans()) {
            assert_eq!(g.span, e.span, "span diverges");
            assert_eq!(g.parent, e.parent, "parent diverges for {:?}", e.span.name);
            assert_eq!(g.launch_interval, e.launch_interval);
        }
        assert_eq!(got.ambiguities.ambiguous, expected.ambiguities.ambiguous);
        assert_eq!(got.ambiguities.orphans, expected.ambiguities.orphans);
    }

    #[test]
    fn incremental_async_pair_straddling_a_batch_boundary_matches_batch() {
        // The launch half arrives in one batch, its execution in the next:
        // the pair must still merge because pairing happens at
        // finalization, over the whole buffered run.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mut layer = span("conv", StackLevel::Layer, 10, 400);
        layer.parent = Some(model.id);
        let l = launch("cudaLaunchKernel", 9, 50, 60, None);
        let x = exec("volta_scudnn", 9, 500, 900);
        // split between launch (index 2) and execution (index 3)
        assert_incremental_matches_batch(vec![model, layer, l, x], &[3]);
    }

    #[test]
    fn incremental_out_of_order_run_batches_match_batch() {
        // Batches interleave two runs (run 2 spans arrive between run 1
        // batches): per-run order is all that matters, and the output
        // keeps first-appearance run order like `Trace::from_spans`.
        let mut spans = Vec::new();
        for tid in [1u64, 2] {
            let mut m = span("predict", StackLevel::Model, 0, 1000);
            m.trace_id = TraceId(tid);
            let mid = m.id;
            let mut layer = span("conv", StackLevel::Layer, 10, 400);
            layer.trace_id = TraceId(tid);
            layer.parent = Some(mid);
            let mut l = launch("cudaLaunchKernel", 40 + tid, 50, 60, None);
            l.trace_id = TraceId(tid);
            let mut x = exec("volta", 40 + tid, 450, 900);
            x.trace_id = TraceId(tid);
            spans.extend([m, layer, l, x]);
        }
        // Interleave the runs, then split mid-everything.
        spans.swap(1, 5);
        spans.swap(3, 6);
        for splits in [&[1usize, 2, 3][..], &[4], &[7], &[2, 5]] {
            assert_incremental_matches_batch(spans.clone(), splits);
        }
    }

    #[test]
    fn incremental_empty_and_duplicate_flushes_are_inert() {
        let mut engine = CorrelationEngine::new();
        // Finalizing an unknown run: None, not a panic or empty trace.
        assert!(engine.finalize_run(TraceId(7)).is_none());
        // Empty finalize_all: an empty trace.
        assert!(engine.finalize_all().is_empty());
        engine.push_batch(Vec::new()); // empty batch is a no-op
        assert_eq!(engine.pending_spans(), 0);
        engine.push_span(span("predict", StackLevel::Model, 0, 100));
        assert_eq!(engine.pending_runs(), vec![TraceId(1)]);
        let first = engine.finalize_run(TraceId(1)).expect("run pending");
        assert_eq!(first.len(), 1);
        // Duplicate flush of the same run: already retired.
        assert!(engine.finalize_run(TraceId(1)).is_none());
        assert!(engine.pending_runs().is_empty());
    }

    #[test]
    fn incremental_late_spans_after_finalize_correlate_alone() {
        // The window-eviction hazard: once a run is finalized, its parent
        // candidates are gone. Late spans for the same id must behave as a
        // fresh run — correlated against each other only, matching the
        // batch oracle over just those spans.
        let model = span("predict", StackLevel::Model, 0, 1000);
        let mut engine = CorrelationEngine::new();
        engine.push_span(model);
        engine.finalize_run(TraceId(1)).expect("run pending");
        // Arrives after eviction: no model span in the window any more.
        let stray = span("late_kernel", StackLevel::Kernel, 100, 200);
        let oracle = CorrelationEngine::new().correlate(Trace::from_spans(vec![stray.clone()]));
        engine.push_span(stray);
        let got = engine.finalize_run(TraceId(1)).expect("fresh window run");
        assert_eq!(got.len(), oracle.len());
        assert_eq!(got.spans()[0].span, oracle.spans()[0].span);
        assert_eq!(got.spans()[0].parent, None, "no candidate: stays a root");
        // A kernel with no level above it in its run is not even an orphan
        // in the batch engine; the incremental path must agree.
        assert_eq!(got.ambiguities.orphans, oracle.ambiguities.orphans);
    }

    #[test]
    fn incremental_finalize_order_and_trees_stay_lazy() {
        // Per-run finalization reuses the engine scratch: the kernel-level
        // tree must stay unbuilt run after run, same as the batch pass.
        let mut engine = CorrelationEngine::new();
        for tid in [3u64, 1, 2] {
            let mut m = span("predict", StackLevel::Model, 0, 1000);
            m.trace_id = TraceId(tid);
            let mut k = span("kernel", StackLevel::Kernel, 100, 200);
            k.trace_id = TraceId(tid);
            engine.push_batch([m, k]);
        }
        assert_eq!(
            engine.pending_runs(),
            vec![TraceId(3), TraceId(1), TraceId(2)],
            "window keeps first-appearance order, not id order"
        );
        let all = engine.finalize_all();
        assert_eq!(all.len(), 6);
        assert!(all.ambiguities.is_clean());
        assert_eq!(engine.trees_built_at(StackLevel::Kernel), 0);
        assert_eq!(engine.trees_built_at(StackLevel::Model), 3, "one per run");
    }

    #[test]
    fn correlation_cache_matches_batch_and_does_o_new_work() {
        let run_spans = |tid: u64| {
            let mut m = span("predict", StackLevel::Model, 0, 1000);
            m.trace_id = TraceId(tid);
            let mid = m.id;
            let mut layer = span("conv", StackLevel::Layer, 10, 400);
            layer.trace_id = TraceId(tid);
            layer.parent = Some(mid);
            let mut l = launch("cudaLaunchKernel", 90 + tid, 50, 60, None);
            l.trace_id = TraceId(tid);
            let mut x = exec("volta", 90 + tid, 450, 900);
            x.trace_id = TraceId(tid);
            vec![m, layer, l, x]
        };
        let mut store = SpanStore::new();
        for s in run_spans(1).iter().chain(run_spans(2).iter()) {
            store.push(s);
        }
        let mut engine = CorrelationEngine::new();
        let mut cache = StoreCorrelationCache::new();
        cache.refresh(&mut engine, &store);
        assert_eq!(cache.passes(), 2, "one pass per run");
        assert_eq!(cache.runs_cached(), 2);

        // Identity vs the one-shot store pass.
        let batch = CorrelationEngine::new()
            .correlate_store(&store)
            .materialize(&store);
        let cached = cache.materialize(&store);
        assert_eq!(cached.len(), batch.len());
        for (c, b) in cached.spans().iter().zip(batch.spans()) {
            assert_eq!(c.span, b.span);
            assert_eq!(c.parent, b.parent);
            assert_eq!(c.launch_interval, b.launch_interval);
        }

        // Nothing new: a refresh re-correlates nothing.
        cache.refresh(&mut engine, &store);
        assert_eq!(cache.passes(), 2, "clean refresh must be free");

        // Appending to run 2 re-correlates run 2 only.
        let mut extra = span("kernel2", StackLevel::Kernel, 100, 200);
        extra.trace_id = TraceId(2);
        store.push(&extra);
        cache.refresh(&mut engine, &store);
        assert_eq!(cache.passes(), 3, "one grown run, one pass");

        // A new run appends one more pass, not a full recompute.
        for s in run_spans(3) {
            store.push(&s);
        }
        cache.refresh(&mut engine, &store);
        assert_eq!(cache.passes(), 4);

        // The refreshed cache still matches the batch pass.
        let batch = CorrelationEngine::new()
            .correlate_store(&store)
            .materialize(&store);
        let cached = cache.materialize(&store);
        assert_eq!(cached.len(), batch.len());
        for (c, b) in cached.spans().iter().zip(batch.spans()) {
            assert_eq!(c.span, b.span);
            assert_eq!(c.parent, b.parent);
        }

        // Invalidation after a store clear: everything recorrelates.
        store.clear();
        cache.invalidate();
        assert_eq!(cache.runs_cached(), 0);
        store.push(&span("predict", StackLevel::Model, 0, 10));
        cache.refresh(&mut engine, &store);
        assert_eq!(cache.passes(), 5);
        assert_eq!(cache.materialize(&store).len(), 1);
    }

    #[test]
    fn store_pass_is_allocation_shaped_like_the_span_pass() {
        // Same lazy-tree contract as the span engine: the kernel-level tree
        // is never built when every kernel resolves against layers.
        let model = span("predict", StackLevel::Model, 0, 100_000);
        let mid = model.id;
        let mut spans = vec![model];
        for i in 0..20u64 {
            let mut layer = span("conv", StackLevel::Layer, i * 1000, i * 1000 + 900);
            layer.parent = Some(mid);
            spans.push(layer);
        }
        for i in 0..100u64 {
            let at = (i % 20) * 1000;
            spans.push(launch("cudaLaunchKernel", i, at + 10, at + 20, None));
            spans.push(exec("volta_kernel", i, at + 30, at + 800));
        }
        let store = crate::store::SpanStore::from_spans(&spans);
        let mut engine = CorrelationEngine::new();
        let c = engine.correlate_store(&store);
        assert!(c.ambiguities.is_clean(), "{:?}", c.ambiguities);
        assert_eq!(c.len(), 1 + 20 + 100, "pairs merged");
        assert_eq!(engine.trees_built_at(StackLevel::Kernel), 0);
        assert_eq!(engine.trees_built_at(StackLevel::Layer), 1);
        assert_eq!(engine.trees_built_at(StackLevel::Model), 0);
    }
}
