//! `.xspb` — the compact length-prefixed binary span interchange format.
//!
//! Span-JSON-lines is the human-debuggable interchange; `.xspb` is the
//! fast one. A stream is a 5-byte header (the magic `XSPB` plus a format
//! version byte) followed by length-prefixed records:
//!
//! | field   | size | meaning                                      |
//! |---------|------|----------------------------------------------|
//! | kind    | 1    | `0x01` name definition, `0x02` span          |
//! | length  | 4    | payload length, big-endian `u32`             |
//! | payload | len  | record body                                  |
//!
//! A **name record** (`0x01`) defines the next symbol of the stream's
//! string table: `[symbol: u32][utf-8 bytes]`. Symbols are dense and
//! sequential — record *n* must carry symbol id *n* — so the table is a
//! plain vector on both sides and the encoding is deterministic: writers
//! emit a name record at each string's first appearance, which makes
//! `.xspb` bytes a pure function of the span sequence (the
//! Serial-vs-`Fixed(4)` byte-identity test extends to this format).
//!
//! A **span record** (`0x02`) carries one span, all integers big-endian:
//! `[id: u64][trace_id: u64][name: sym u32][level: u8][flags: u8]`
//! `[parent: u64 if flags&1][start: u64][end: u64]`
//! `[tag_count: u32][tags...][log_count: u32][logs...]` where a tag is
//! `[key: sym u32][kind: u8][value]` (kind 0 `Str`: sym u32; 1 `I64`/2
//! `U64`: 8 bytes; 3 `F64`: 8-byte IEEE bits; 4 `Bool`: 1 byte) and a log
//! is `[at_ns: u64][len: u32][utf-8 bytes]`.
//!
//! The reader mirrors the paranoia of the daemon's `FrameReader`: the
//! length prefix is validated against [`MAX_RECORD_LEN`] *before* any
//! allocation, element counts are validated against the bytes actually
//! present before reserving, clean EOF (at a record boundary) is
//! distinguished from a torn record, and every failure is a structured
//! [`BinaryReadError`] — corrupted input can never panic or OOM the
//! process. Because string tag values are interned too, re-reading a
//! capture into a [`SpanStore`] via [`SpanBinaryReader::read_into_store`]
//! performs one allocation per *distinct* string, not per span.

use crate::intern::Symbol;
use crate::server::Trace;
use crate::span::{Span, SpanId, StackLevel, TagValue, TraceId};
use crate::store::{SpanStore, SpanView, TagRef};
use std::fmt;
use std::io::{self, Read, Write};

/// The 4-byte magic every `.xspb` stream starts with.
pub const XSPB_MAGIC: [u8; 4] = *b"XSPB";

/// Current format version (the byte after the magic).
pub const XSPB_VERSION: u8 = 1;

/// Upper bound on a single record's payload, checked before allocation —
/// the same cap as the daemon's frame protocol.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

const REC_NAME: u8 = 0x01;
const REC_SPAN: u8 = 0x02;

const TAG_STR: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_U64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_BOOL: u8 = 4;

const FLAG_PARENT: u8 = 1;

/// Whether `prefix` starts with the `.xspb` magic — the format sniff the
/// CLI and the daemon use to route `--from` files and Append payloads.
/// Requires all four magic bytes; shorter prefixes never match.
pub fn is_xspb_prefix(prefix: &[u8]) -> bool {
    prefix.len() >= XSPB_MAGIC.len() && prefix[..XSPB_MAGIC.len()] == XSPB_MAGIC
}

/// What went wrong while decoding a `.xspb` stream.
#[derive(Debug)]
pub enum BinaryReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The stream does not start with the `XSPB` magic.
    BadMagic([u8; 4]),
    /// The stream's version byte is newer than this reader understands.
    UnsupportedVersion(u8),
    /// The stream ended inside a header or a record's promised payload.
    Truncated {
        /// Bytes actually present.
        have: usize,
        /// Bytes the stream promised.
        want: usize,
    },
    /// A record's length prefix exceeds [`MAX_RECORD_LEN`]; rejected
    /// before any allocation.
    Oversized {
        /// The announced payload length.
        len: u32,
    },
    /// An unknown record kind byte.
    UnknownRecordKind(u8),
    /// An unknown tag-value kind byte inside a span record.
    UnknownTagKind(u8),
    /// A symbol reference with no prior name definition.
    BadSymbol(u32),
    /// A name or log message that is not valid UTF-8.
    Utf8,
    /// A structurally invalid record (fields disagree with the payload).
    Malformed(&'static str),
}

impl fmt::Display for BinaryReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryReadError::Io(e) => write!(f, "I/O error while reading spans: {e}"),
            BinaryReadError::BadMagic(m) => {
                write!(f, "not an .xspb stream (magic {m:02x?})")
            }
            BinaryReadError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .xspb version {v} (reader speaks {XSPB_VERSION})"
                )
            }
            BinaryReadError::Truncated { have, want } => {
                write!(f, "truncated record: {have} of {want} promised bytes")
            }
            BinaryReadError::Oversized { len } => {
                write!(f, "record length {len} exceeds cap {MAX_RECORD_LEN}")
            }
            BinaryReadError::UnknownRecordKind(k) => write!(f, "unknown record kind 0x{k:02x}"),
            BinaryReadError::UnknownTagKind(k) => write!(f, "unknown tag kind 0x{k:02x}"),
            BinaryReadError::BadSymbol(s) => write!(f, "undefined symbol {s}"),
            BinaryReadError::Utf8 => write!(f, "string payload is not valid UTF-8"),
            BinaryReadError::Malformed(what) => write!(f, "malformed record: {what}"),
        }
    }
}

impl std::error::Error for BinaryReadError {}

impl From<io::Error> for BinaryReadError {
    fn from(e: io::Error) -> Self {
        BinaryReadError::Io(e)
    }
}

/// Streaming `.xspb` writer: emits the header on construction, then one
/// name record per distinct string (at first appearance) and one span
/// record per span.
///
/// ```
/// use xsp_trace::export::binary::{SpanBinaryWriter, SpanBinaryReader};
/// use xsp_trace::{SpanBuilder, StackLevel, TraceId};
/// let span = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1)).start(0).finish(5);
/// let mut w = SpanBinaryWriter::new(Vec::new()).unwrap();
/// w.write_span(&span).unwrap();
/// let bytes = w.finish().unwrap();
/// let back: Vec<_> = SpanBinaryReader::new(&bytes[..]).collect::<Result<_, _>>().unwrap();
/// assert_eq!(back, vec![span]);
/// ```
#[derive(Debug)]
pub struct SpanBinaryWriter<W: Write> {
    out: W,
    names: crate::intern::NameTable,
    written: usize,
    buf: Vec<u8>,
}

impl<W: Write> SpanBinaryWriter<W> {
    /// Writes the stream header and returns the writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&XSPB_MAGIC)?;
        out.write_all(&[XSPB_VERSION])?;
        Ok(Self {
            out,
            names: crate::intern::NameTable::new(),
            written: 0,
            buf: Vec::new(),
        })
    }

    /// Interns `name`, emitting a name record when it is new to the stream.
    fn sym(&mut self, name: &str) -> io::Result<Symbol> {
        if let Some(sym) = self.names.get(name) {
            return Ok(sym);
        }
        let sym = self.names.intern(name);
        let len = 4 + name.len();
        let len = u32::try_from(len)
            .ok()
            .filter(|&l| l <= MAX_RECORD_LEN)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "name exceeds the record cap")
            })?;
        self.out.write_all(&[REC_NAME])?;
        self.out.write_all(&len.to_be_bytes())?;
        self.out.write_all(&sym.0.to_be_bytes())?;
        self.out.write_all(name.as_bytes())?;
        Ok(sym)
    }

    /// Appends one span record (plus any name records it needs).
    pub fn write_span(&mut self, span: &Span) -> io::Result<()> {
        self.encode_span(
            span.id,
            span.trace_id,
            &span.name,
            span.level,
            span.parent,
            span.start_ns,
            span.end_ns,
            span.tags.len(),
            span.tags.iter().map(|(k, v)| (k.as_str(), TagRef::from(v))),
            span.logs.len(),
            span.logs.iter().map(|l| (l.at_ns, l.message.as_str())),
        )
    }

    /// Appends one span straight from a [`SpanStore`] view — no owned
    /// [`Span`] is materialized (the daemon's spill path).
    pub fn write_view(&mut self, view: SpanView<'_>) -> io::Result<()> {
        self.encode_span(
            view.id(),
            view.trace_id(),
            view.name(),
            view.level(),
            view.parent(),
            view.start_ns(),
            view.end_ns(),
            view.tag_count(),
            view.tags(),
            view.log_count(),
            view.logs(),
        )
    }

    /// Appends every span of `trace`.
    pub fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        trace.spans().iter().try_for_each(|s| self.write_span(s))
    }

    /// Appends every span of `store`, in push order.
    pub fn write_store(&mut self, store: &SpanStore) -> io::Result<()> {
        store.iter().try_for_each(|v| self.write_view(v))
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_span<'x>(
        &mut self,
        id: SpanId,
        trace_id: TraceId,
        name: &str,
        level: StackLevel,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
        tag_count: usize,
        tags: impl Iterator<Item = (&'x str, TagRef<'x>)>,
        log_count: usize,
        logs: impl Iterator<Item = (u64, &'x str)>,
    ) -> io::Result<()> {
        let name_sym = self.sym(name)?;
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        buf.extend_from_slice(&id.0.to_be_bytes());
        buf.extend_from_slice(&trace_id.0.to_be_bytes());
        buf.extend_from_slice(&name_sym.0.to_be_bytes());
        buf.push(level.rank());
        match parent {
            Some(p) => {
                buf.push(FLAG_PARENT);
                buf.extend_from_slice(&p.0.to_be_bytes());
            }
            None => buf.push(0),
        }
        buf.extend_from_slice(&start_ns.to_be_bytes());
        buf.extend_from_slice(&end_ns.to_be_bytes());
        let count = |n: usize| {
            u32::try_from(n).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "span field count exceeds u32")
            })
        };
        buf.extend_from_slice(&count(tag_count)?.to_be_bytes());
        let mut encode = (|| {
            for (key, value) in tags {
                let key_sym = self.sym(key)?;
                buf.extend_from_slice(&key_sym.0.to_be_bytes());
                match value {
                    TagRef::Str(s) => {
                        let val_sym = self.sym(s)?;
                        buf.push(TAG_STR);
                        buf.extend_from_slice(&val_sym.0.to_be_bytes());
                    }
                    TagRef::I64(v) => {
                        buf.push(TAG_I64);
                        buf.extend_from_slice(&v.to_be_bytes());
                    }
                    TagRef::U64(v) => {
                        buf.push(TAG_U64);
                        buf.extend_from_slice(&v.to_be_bytes());
                    }
                    TagRef::F64(v) => {
                        buf.push(TAG_F64);
                        buf.extend_from_slice(&v.to_bits().to_be_bytes());
                    }
                    TagRef::Bool(v) => {
                        buf.push(TAG_BOOL);
                        buf.push(v as u8);
                    }
                }
            }
            buf.extend_from_slice(&count(log_count)?.to_be_bytes());
            for (at_ns, message) in logs {
                buf.extend_from_slice(&at_ns.to_be_bytes());
                buf.extend_from_slice(&count(message.len())?.to_be_bytes());
                buf.extend_from_slice(message.as_bytes());
            }
            io::Result::Ok(())
        })();
        if let Ok(()) = &mut encode {
            let len = u32::try_from(buf.len())
                .ok()
                .filter(|&l| l <= MAX_RECORD_LEN)
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "span exceeds the record cap")
                });
            encode = len.and_then(|len| {
                self.out.write_all(&[REC_SPAN])?;
                self.out.write_all(&len.to_be_bytes())?;
                self.out.write_all(&buf)?;
                self.written += 1;
                Ok(())
            });
        }
        self.buf = buf;
        encode
    }

    /// Number of spans written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes without consuming the writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A decoded record body, before symbol resolution.
enum Record {
    Name,
    Span(Span),
}

/// Streaming `.xspb` reader: yields one [`Span`] per span record,
/// maintaining the stream's symbol table as name records arrive.
///
/// Iteration yields `Result<Span, BinaryReadError>`; a clean EOF at a
/// record boundary ends the stream, EOF anywhere else is
/// [`BinaryReadError::Truncated`].
#[derive(Debug)]
pub struct SpanBinaryReader<R: Read> {
    src: R,
    names: Vec<String>,
    buf: Vec<u8>,
    header_done: bool,
}

impl<R: Read> SpanBinaryReader<R> {
    /// Creates a reader over `src`; the header is validated on first read.
    pub fn new(src: R) -> Self {
        Self {
            src,
            names: Vec::new(),
            buf: Vec::new(),
            header_done: false,
        }
    }

    /// Reads the next span, or `Ok(None)` at a clean end of stream.
    pub fn next_span(&mut self) -> Result<Option<Span>, BinaryReadError> {
        loop {
            match self.next_record()? {
                None => return Ok(None),
                Some(Record::Name) => continue,
                Some(Record::Span(span)) => return Ok(Some(span)),
            }
        }
    }

    /// Reads the rest of the stream straight into `store`, remapping the
    /// stream's symbols into the store's table — one intern per *distinct*
    /// string, no owned [`Span`] materialized. Returns the span count.
    pub fn read_into_store(mut self, store: &mut SpanStore) -> Result<usize, BinaryReadError> {
        self.check_header()?;
        let mut remap: Vec<Symbol> = self
            .names
            .iter()
            .map(|n| store.names_mut().intern(n))
            .collect();
        let mut pushed = 0usize;
        loop {
            let Some((kind, len)) = self.read_record_header()? else {
                return Ok(pushed);
            };
            self.read_payload(len)?;
            match kind {
                REC_NAME => {
                    self.define_name()?;
                    let latest = self.names.last().expect("just defined");
                    remap.push(store.names_mut().intern(latest));
                }
                REC_SPAN => {
                    decode_span_into_store(&self.buf, &remap, store)?;
                    pushed += 1;
                }
                other => return Err(BinaryReadError::UnknownRecordKind(other)),
            }
        }
    }

    fn check_header(&mut self) -> Result<(), BinaryReadError> {
        if self.header_done {
            return Ok(());
        }
        let mut header = [0u8; 5];
        let have = read_up_to(&mut self.src, &mut header)?;
        if have < header.len() {
            return Err(BinaryReadError::Truncated {
                have,
                want: header.len(),
            });
        }
        let magic: [u8; 4] = header[..4].try_into().expect("4-byte slice");
        if magic != XSPB_MAGIC {
            return Err(BinaryReadError::BadMagic(magic));
        }
        if header[4] != XSPB_VERSION {
            return Err(BinaryReadError::UnsupportedVersion(header[4]));
        }
        self.header_done = true;
        Ok(())
    }

    /// Reads one record header; `Ok(None)` on clean EOF. The kind and the
    /// length bound are validated before the payload is touched.
    fn read_record_header(&mut self) -> Result<Option<(u8, u32)>, BinaryReadError> {
        let mut header = [0u8; 5];
        let have = read_up_to(&mut self.src, &mut header)?;
        if have == 0 {
            return Ok(None);
        }
        if have < header.len() {
            return Err(BinaryReadError::Truncated {
                have,
                want: header.len(),
            });
        }
        let kind = header[0];
        let len = u32::from_be_bytes(header[1..5].try_into().expect("4-byte slice"));
        if len > MAX_RECORD_LEN {
            return Err(BinaryReadError::Oversized { len });
        }
        if kind != REC_NAME && kind != REC_SPAN {
            return Err(BinaryReadError::UnknownRecordKind(kind));
        }
        Ok(Some((kind, len)))
    }

    fn read_payload(&mut self, len: u32) -> Result<(), BinaryReadError> {
        // `len` is already bounded by MAX_RECORD_LEN, so this resize cannot
        // be attacker-amplified.
        self.buf.resize(len as usize, 0);
        let have = read_up_to(&mut self.src, &mut self.buf)?;
        if have < len as usize {
            return Err(BinaryReadError::Truncated {
                have,
                want: len as usize,
            });
        }
        Ok(())
    }

    fn next_record(&mut self) -> Result<Option<Record>, BinaryReadError> {
        self.check_header()?;
        let Some((kind, len)) = self.read_record_header()? else {
            return Ok(None);
        };
        self.read_payload(len)?;
        match kind {
            REC_NAME => {
                self.define_name()?;
                Ok(Some(Record::Name))
            }
            REC_SPAN => Ok(Some(Record::Span(decode_span(&self.buf, &self.names)?))),
            other => Err(BinaryReadError::UnknownRecordKind(other)),
        }
    }

    fn define_name(&mut self) -> Result<(), BinaryReadError> {
        if self.buf.len() < 4 {
            return Err(BinaryReadError::Malformed(
                "name record shorter than its symbol id",
            ));
        }
        let sym = u32::from_be_bytes(self.buf[..4].try_into().expect("4-byte slice"));
        if sym as usize != self.names.len() {
            return Err(BinaryReadError::Malformed(
                "non-sequential symbol definition",
            ));
        }
        let name = std::str::from_utf8(&self.buf[4..]).map_err(|_| BinaryReadError::Utf8)?;
        self.names.push(name.to_owned());
        Ok(())
    }
}

impl<R: Read> Iterator for SpanBinaryReader<R> {
    type Item = Result<Span, BinaryReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_span().transpose()
    }
}

/// Reads a complete `.xspb` stream back into a [`Trace`] — the round-trip
/// inverse of [`SpanBinaryWriter`], mirroring
/// [`crate::export::read_span_json_lines`].
pub fn read_span_binary<R: Read>(input: R) -> Result<Trace, BinaryReadError> {
    let spans: Vec<Span> = SpanBinaryReader::new(input).collect::<Result<_, _>>()?;
    Ok(Trace::from_spans(spans))
}

/// Serializes spans to `.xspb` bytes (the binary sibling of
/// `spans_to_jsonl`-style helpers).
pub fn spans_to_binary(spans: &[Span]) -> Vec<u8> {
    let mut w = SpanBinaryWriter::new(Vec::new()).expect("writing to a Vec cannot fail");
    for span in spans {
        w.write_span(span).expect("writing to a Vec cannot fail");
    }
    w.finish().expect("writing to a Vec cannot fail")
}

/// Reads from `src` until `buf` is full or EOF; returns bytes read.
/// `Interrupted` is retried, every other error surfaces.
fn read_up_to(src: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut have = 0;
    while have < buf.len() {
        match src.read(&mut buf[have..]) {
            Ok(0) => break,
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(have)
}

/// Cursor over a record payload; every accessor checks bounds.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], BinaryReadError> {
        if self.remaining() < n {
            return Err(BinaryReadError::Malformed(what));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, BinaryReadError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, BinaryReadError> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, BinaryReadError> {
        Ok(u64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8-byte slice"),
        ))
    }

    fn done(&self, what: &'static str) -> Result<(), BinaryReadError> {
        if self.remaining() != 0 {
            return Err(BinaryReadError::Malformed(what));
        }
        Ok(())
    }
}

/// The fixed-width head of a span record, shared by both decode paths.
struct SpanHead {
    id: SpanId,
    trace_id: TraceId,
    name: u32,
    level: StackLevel,
    parent: Option<SpanId>,
    start_ns: u64,
    end_ns: u64,
    tag_count: u32,
}

fn decode_head(payload: &[u8]) -> Result<(SpanHead, Cursor<'_>), BinaryReadError> {
    let mut c = Cursor::new(payload);
    let id = SpanId(c.u64("span record missing id")?);
    let trace_id = TraceId(c.u64("span record missing trace id")?);
    let name = c.u32("span record missing name symbol")?;
    let rank = c.u8("span record missing level")?;
    let level = *StackLevel::ALL
        .get(rank as usize)
        .ok_or(BinaryReadError::Malformed("stack level out of range"))?;
    let flags = c.u8("span record missing flags")?;
    if flags & !FLAG_PARENT != 0 {
        return Err(BinaryReadError::Malformed("unknown span flags"));
    }
    let parent = if flags & FLAG_PARENT != 0 {
        Some(SpanId(c.u64("span record missing parent")?))
    } else {
        None
    };
    let start_ns = c.u64("span record missing start")?;
    let end_ns = c.u64("span record missing end")?;
    let tag_count = c.u32("span record missing tag count")?;
    // A tag is at least 5 bytes (symbol + kind); reject counts the payload
    // cannot hold before anything reserves capacity on their behalf.
    if tag_count as usize > c.remaining() / 5 {
        return Err(BinaryReadError::Malformed("tag count exceeds payload"));
    }
    Ok((
        SpanHead {
            id,
            trace_id,
            name,
            level,
            parent,
            start_ns,
            end_ns,
            tag_count,
        },
        c,
    ))
}

enum RawTag {
    Str(u32),
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
}

fn decode_tag(c: &mut Cursor<'_>) -> Result<(u32, RawTag), BinaryReadError> {
    let key = c.u32("tag missing key symbol")?;
    let kind = c.u8("tag missing kind")?;
    let value = match kind {
        TAG_STR => RawTag::Str(c.u32("string tag missing value symbol")?),
        TAG_I64 => RawTag::I64(c.u64("i64 tag missing value")? as i64),
        TAG_U64 => RawTag::U64(c.u64("u64 tag missing value")?),
        TAG_F64 => RawTag::F64(f64::from_bits(c.u64("f64 tag missing value")?)),
        TAG_BOOL => RawTag::Bool(c.u8("bool tag missing value")? != 0),
        other => return Err(BinaryReadError::UnknownTagKind(other)),
    };
    Ok((key, value))
}

fn read_log_count(c: &mut Cursor<'_>) -> Result<u32, BinaryReadError> {
    let log_count = c.u32("span record missing log count")?;
    // A log is at least 12 bytes (at_ns + message length).
    if log_count as usize > c.remaining() / 12 {
        return Err(BinaryReadError::Malformed("log count exceeds payload"));
    }
    Ok(log_count)
}

fn decode_span(payload: &[u8], names: &[String]) -> Result<Span, BinaryReadError> {
    let resolve = |sym: u32| -> Result<&str, BinaryReadError> {
        names
            .get(sym as usize)
            .map(String::as_str)
            .ok_or(BinaryReadError::BadSymbol(sym))
    };
    let (head, mut c) = decode_head(payload)?;
    let mut tags = Vec::with_capacity(head.tag_count as usize);
    for _ in 0..head.tag_count {
        let (key, raw) = decode_tag(&mut c)?;
        let value = match raw {
            RawTag::Str(sym) => TagValue::Str(resolve(sym)?.to_owned()),
            RawTag::I64(v) => TagValue::I64(v),
            RawTag::U64(v) => TagValue::U64(v),
            RawTag::F64(v) => TagValue::F64(v),
            RawTag::Bool(v) => TagValue::Bool(v),
        };
        tags.push((resolve(key)?.to_owned(), value));
    }
    let log_count = read_log_count(&mut c)?;
    let mut logs = Vec::with_capacity(log_count as usize);
    for _ in 0..log_count {
        let at_ns = c.u64("log missing timestamp")?;
        let len = c.u32("log missing message length")? as usize;
        let bytes = c.take(len, "log message exceeds payload")?;
        let message = std::str::from_utf8(bytes)
            .map_err(|_| BinaryReadError::Utf8)?
            .to_owned();
        logs.push(crate::span::LogEvent { at_ns, message });
    }
    c.done("span record has trailing bytes")?;
    Ok(Span {
        id: head.id,
        trace_id: head.trace_id,
        name: resolve(head.name)?.to_owned(),
        level: head.level,
        start_ns: head.start_ns,
        end_ns: head.end_ns,
        parent: head.parent,
        tags,
        logs,
    })
}

fn decode_span_into_store(
    payload: &[u8],
    remap: &[Symbol],
    store: &mut SpanStore,
) -> Result<(), BinaryReadError> {
    let remap_sym = |sym: u32| -> Result<Symbol, BinaryReadError> {
        remap
            .get(sym as usize)
            .copied()
            .ok_or(BinaryReadError::BadSymbol(sym))
    };
    let (head, mut c) = decode_head(payload)?;
    let name = remap_sym(head.name)?;
    store.push_raw_interned(
        head.id,
        head.trace_id,
        name,
        head.level,
        head.start_ns,
        head.end_ns,
        head.parent,
    );
    for _ in 0..head.tag_count {
        let (key, raw) = decode_tag(&mut c)?;
        let cell = match raw {
            RawTag::Str(sym) => crate::store::TagCell::Str(remap_sym(sym)?),
            RawTag::I64(v) => crate::store::TagCell::I64(v),
            RawTag::U64(v) => crate::store::TagCell::U64(v),
            RawTag::F64(v) => crate::store::TagCell::F64(v),
            RawTag::Bool(v) => crate::store::TagCell::Bool(v),
        };
        store.raw_tag_interned(remap_sym(key)?, cell);
    }
    let log_count = read_log_count(&mut c)?;
    for _ in 0..log_count {
        let at_ns = c.u64("log missing timestamp")?;
        let len = c.u32("log missing message length")? as usize;
        let bytes = c.take(len, "log message exceeds payload")?;
        let message = std::str::from_utf8(bytes).map_err(|_| BinaryReadError::Utf8)?;
        store.raw_log(at_ns, message);
    }
    c.done("span record has trailing bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{tag_keys, SpanBuilder};

    fn sample() -> Vec<Span> {
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .tag("batch_size", 4u64)
            .tag("note", "with \"quotes\" and \n newlines")
            .log(5, "warmup")
            .finish(1_000_000);
        let pid = model.id;
        let launch = SpanBuilder::new("cudaLaunchKernel", StackLevel::Kernel, TraceId(1))
            .start(1_000)
            .parent(pid)
            .tag(tag_keys::CORRELATION_ID, 7u64)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .finish(1_100);
        let exec = SpanBuilder::new("volta_scudnn", StackLevel::Kernel, TraceId(1))
            .start(2_000)
            .tag(tag_keys::CORRELATION_ID, 7u64)
            .tag(tag_keys::ASYNC_EXECUTION, true)
            .tag("occ", 0.25f64)
            .tag("neg", TagValue::I64(-3))
            .tag("flag", false)
            .finish(9_000);
        vec![model, launch, exec]
    }

    #[test]
    fn round_trip_preserves_spans_exactly() {
        let spans = sample();
        let bytes = spans_to_binary(&spans);
        assert!(is_xspb_prefix(&bytes));
        let back: Vec<Span> = SpanBinaryReader::new(&bytes[..])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn second_write_read_cycle_is_byte_identical() {
        let spans = sample();
        let bytes = spans_to_binary(&spans);
        let back: Vec<Span> = SpanBinaryReader::new(&bytes[..])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            spans_to_binary(&back),
            bytes,
            "re-encode must be a fixpoint"
        );
    }

    #[test]
    fn read_into_store_matches_span_path() {
        let spans = sample();
        let bytes = spans_to_binary(&spans);
        let mut store = SpanStore::new();
        let n = SpanBinaryReader::new(&bytes[..])
            .read_into_store(&mut store)
            .unwrap();
        assert_eq!(n, spans.len());
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(&store.materialize(i as u32), s);
        }
    }

    #[test]
    fn names_are_written_once() {
        let mut spans = Vec::new();
        for i in 0..50u64 {
            spans.push(
                SpanBuilder::new("volta_scudnn", StackLevel::Kernel, TraceId(1))
                    .start(i)
                    .tag("occ", 0.5f64)
                    .finish(i + 1),
            );
        }
        let bytes = spans_to_binary(&spans);
        let name_records = bytes
            .windows("volta_scudnn".len())
            .filter(|w| *w == &b"volta_scudnn"[..])
            .count();
        assert_eq!(name_records, 1, "each distinct string appears once");
    }

    #[test]
    fn empty_stream_is_valid() {
        let w = SpanBinaryWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 5);
        assert_eq!(read_span_binary(&bytes[..]).unwrap().len(), 0);
    }

    #[test]
    fn writer_tracks_span_count() {
        let mut w = SpanBinaryWriter::new(Vec::new()).unwrap();
        assert_eq!(w.written(), 0);
        for s in sample() {
            w.write_span(&s).unwrap();
        }
        assert_eq!(w.written(), 3);
    }
}
