//! Streaming trace export: incremental writers over [`io::Write`].
//!
//! The string-returning exporters in [`crate::export`] materialize the whole
//! serialized trace before anything leaves the process — fine for a unit
//! test, hopeless for sweep-scale traces (a single BERT-Base run already
//! serializes to ~200 KB; a model-fleet sweep is thousands of runs). Every
//! writer here instead emits spans *as they arrive*: peak memory is one
//! span's serialization (one evaluation run's spans for folded stacks,
//! which need the run's parent tree), independent of total trace size.
//!
//! Three formats share one contract:
//!
//! * **span JSON** — [`SpanJsonWriter`] (the `[{span},...]` array the
//!   offline-analysis pipeline reads) and [`SpanJsonLinesWriter`] (one span
//!   object per line, the streaming interchange format; concatenable, and
//!   readable back without loading the file via [`SpanJsonLinesReader`]).
//! * **Chrome trace events** — [`ChromeTraceWriter`], loadable in
//!   `chrome://tracing` / Perfetto.
//! * **folded stacks** — [`FoldedStacksWriter`], Brendan-Gregg format for
//!   `flamegraph.pl` / speedscope.
//!
//! The string exporters in [`crate::export`] are thin wrappers over these
//! writers, so streamed bytes are *identical* to materialized bytes — the
//! golden tests pin that equivalence, and the engine's determinism contract
//! (serial output == parallel output) extends to every exported artifact.

use crate::correlate::CorrelatedTrace;
use crate::server::Trace;
use crate::span::{Span, TagValue};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error produced by the streaming readers: an I/O failure or a line that
/// is not a valid span object.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line failed to parse as span JSON; carries the 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// The parse error.
        source: serde_json::Error,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "I/O error while reading spans: {e}"),
            ReadError::Parse { line, source } => {
                write!(f, "line {line} is not a span object: {source}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Serializes one span and writes it to `out` — the shared unit of work of
/// every span-JSON framing. Only this one span's JSON is ever materialized.
fn write_span(out: &mut impl Write, span: &Span) -> io::Result<()> {
    let json = serde_json::to_string(span).expect("span serialization cannot fail");
    out.write_all(json.as_bytes())
}

/// Incremental writer for the span-JSON *array* format — byte-compatible
/// with [`crate::export::to_span_json`], which wraps it.
///
/// ```
/// use xsp_trace::export::stream::SpanJsonWriter;
/// use xsp_trace::{SpanBuilder, StackLevel, TraceId};
/// let span = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1)).start(0).finish(5);
/// let mut w = SpanJsonWriter::new(Vec::new()).unwrap();
/// w.write_span(&span).unwrap();
/// let bytes = w.finish().unwrap();
/// assert!(bytes.starts_with(b"[{") && bytes.ends_with(b"}]"));
/// ```
#[derive(Debug)]
pub struct SpanJsonWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> SpanJsonWriter<W> {
    /// Opens the array.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(b"[")?;
        Ok(Self { out, written: 0 })
    }

    /// Appends one span.
    pub fn write_span(&mut self, span: &Span) -> io::Result<()> {
        if self.written > 0 {
            self.out.write_all(b",")?;
        }
        write_span(&mut self.out, span)?;
        self.written += 1;
        Ok(())
    }

    /// Appends every span of `trace`.
    pub fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        trace.spans().iter().try_for_each(|s| self.write_span(s))
    }

    /// Number of spans written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Closes the array, flushes, and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(b"]")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Incremental writer for span-JSON-*lines*: one span object per line.
///
/// This is the streaming interchange format — outputs are concatenable
/// (append two exports, get one valid trace), resumable after a crash up to
/// the last complete line, and readable back incrementally by
/// [`SpanJsonLinesReader`] without ever holding the file in memory.
#[derive(Debug)]
pub struct SpanJsonLinesWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> SpanJsonLinesWriter<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        Self { out, written: 0 }
    }

    /// Appends one span as a single line.
    pub fn write_span(&mut self, span: &Span) -> io::Result<()> {
        write_span(&mut self.out, span)?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Appends every span of `trace`, one line each.
    pub fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        trace.spans().iter().try_for_each(|s| self.write_span(s))
    }

    /// Number of spans written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes without consuming the writer (for long-lived sinks that
    /// outlive many sweep points).
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for span-JSON-lines: yields one [`Span`] per line,
/// holding only the current line in memory. Blank lines are skipped, so
/// concatenated or hand-edited exports stay readable.
#[derive(Debug)]
pub struct SpanJsonLinesReader<R: BufRead> {
    input: R,
    line: usize,
    buf: String,
}

impl<R: BufRead> SpanJsonLinesReader<R> {
    /// Creates a reader over `input`.
    pub fn new(input: R) -> Self {
        Self {
            input,
            line: 0,
            buf: String::new(),
        }
    }
}

impl<R: BufRead> Iterator for SpanJsonLinesReader<R> {
    type Item = Result<Span, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line += 1;
            match self.input.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    let line = self.buf.trim_end_matches(['\n', '\r']);
                    if line.trim().is_empty() {
                        continue;
                    }
                    return Some(serde_json::from_str::<Span>(line).map_err(|source| {
                        ReadError::Parse {
                            line: self.line,
                            source,
                        }
                    }));
                }
                Err(e) => return Some(Err(ReadError::Io(e))),
            }
        }
    }
}

/// Reads a complete span-JSON-lines stream back into a [`Trace`] — the
/// round-trip inverse of [`SpanJsonLinesWriter`].
pub fn read_span_json_lines<R: BufRead>(input: R) -> Result<Trace, ReadError> {
    let spans: Vec<Span> = SpanJsonLinesReader::new(input).collect::<Result<_, _>>()?;
    Ok(Trace::from_spans(spans))
}

/// One event in Chrome trace-event format ("X" complete events).
#[derive(Debug, serde::Serialize)]
struct ChromeEvent<'a> {
    name: &'a str,
    cat: String,
    ph: &'static str,
    /// Microseconds (Chrome's unit).
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
    args: serde_json::Map<String, serde_json::Value>,
}

fn tag_to_json(v: &TagValue) -> serde_json::Value {
    match v {
        TagValue::Str(s) => serde_json::Value::String(s.clone()),
        TagValue::I64(i) => serde_json::json!(i),
        TagValue::U64(u) => serde_json::json!(u),
        TagValue::F64(f) => serde_json::json!(f),
        TagValue::Bool(b) => serde_json::Value::Bool(*b),
    }
}

/// Incremental writer for Chrome trace-event JSON — byte-compatible with
/// [`crate::export::to_chrome_trace`], which wraps it. Each stack level maps
/// to its own "thread" row so the across-stack timeline reads top-down like
/// Figure 1 of the paper; each evaluation run becomes a "process" row.
#[derive(Debug)]
pub struct ChromeTraceWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> ChromeTraceWriter<W> {
    /// Opens the `traceEvents` envelope.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(b"{\"traceEvents\":[")?;
        Ok(Self { out, written: 0 })
    }

    /// Appends one span as an "X" (complete) event.
    pub fn write_span(&mut self, span: &Span) -> io::Result<()> {
        let mut args = serde_json::Map::new();
        args.insert("span_id".into(), serde_json::json!(span.id.0));
        if let Some(p) = span.parent {
            args.insert("parent".into(), serde_json::json!(p.0));
        }
        for (k, v) in &span.tags {
            args.insert(k.clone(), tag_to_json(v));
        }
        let event = ChromeEvent {
            name: &span.name,
            cat: span.level.to_string(),
            ph: "X",
            ts: span.start_ns as f64 / 1e3,
            dur: span.duration_ns() as f64 / 1e3,
            pid: span.trace_id.0,
            tid: span.level.rank() as u64,
            args,
        };
        if self.written > 0 {
            self.out.write_all(b",")?;
        }
        let json = serde_json::to_string(&event).expect("chrome event serialization cannot fail");
        self.out.write_all(json.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Appends every span of `trace`.
    pub fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        trace.spans().iter().try_for_each(|s| self.write_span(s))
    }

    /// Number of events written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes without consuming the writer (the envelope stays open for
    /// more events).
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Closes the envelope and flushes without consuming the writer — for
    /// long-lived sinks whose writer half lives inside an enum. Close
    /// exactly once; a later `write_span` would write past the trailer.
    pub fn close(&mut self) -> io::Result<()> {
        self.out.write_all(b"]}")?;
        self.out.flush()
    }

    /// Closes the envelope, flushes, and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.close()?;
        Ok(self.out)
    }
}

/// Incremental writer for Brendan-Gregg folded-stack output — one line per
/// span with self-time, `model_prediction;conv2d/Conv2D;volta_scudnn 1234`
/// (weight = self time in microseconds).
///
/// Folded stacks need each span's children, so the streaming unit is one
/// *correlated run* ([`write_run`](FoldedStacksWriter::write_run)): peak
/// memory is the largest single run, not the whole export.
/// [`crate::export::to_folded_stacks`] wraps this writer.
#[derive(Debug)]
pub struct FoldedStacksWriter<W: Write> {
    out: W,
}

impl<W: Write> FoldedStacksWriter<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Streams the folded stacks of one correlated trace (typically a
    /// single evaluation run) to the output, walking the trace's built-once
    /// root/children indices — no per-export adjacency rebuild.
    pub fn write_run(&mut self, trace: &CorrelatedTrace) -> io::Result<()> {
        let mut stack = Vec::new();
        for &r in trace.root_indices() {
            self.emit(trace, r, &mut stack)?;
        }
        Ok(())
    }

    fn emit(
        &mut self,
        trace: &CorrelatedTrace,
        idx: usize,
        stack: &mut Vec<String>,
    ) -> io::Result<()> {
        let span = &trace.spans()[idx].span;
        stack.push(span.name.replace([';', ' '], "_"));
        let kids = trace.child_indices(span.id);
        let child_time: u64 = kids
            .iter()
            .map(|&k| trace.spans()[k].span.duration_ns())
            .sum();
        let self_us = span.duration_ns().saturating_sub(child_time) / 1_000;
        if self_us > 0 || kids.is_empty() {
            writeln!(self.out, "{} {}", stack.join(";"), self_us.max(1))?;
        }
        for &k in kids {
            self.emit(trace, k, stack)?;
        }
        stack.pop();
        Ok(())
    }

    /// Flushes without consuming the writer (for long-lived sinks that
    /// outlive many sweep points).
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::reconstruct_parents;
    use crate::span::{SpanBuilder, StackLevel, TraceId};

    fn spans() -> Vec<Span> {
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .tag("batch_size", 4u64)
            .finish(1_000_000);
        let pid = model.id;
        let layer = SpanBuilder::new("conv2d/Conv2D", StackLevel::Layer, TraceId(1))
            .start(1_000)
            .parent(pid)
            .tag("occ", 0.25f64)
            .finish(500_000);
        vec![model, layer]
    }

    #[test]
    fn array_writer_matches_materialized_exporter() {
        let trace = Trace::from_spans(spans());
        let mut w = SpanJsonWriter::new(Vec::new()).unwrap();
        w.write_trace(&trace).unwrap();
        assert_eq!(w.written(), 2);
        let streamed = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(
            streamed,
            serde_json::to_string(trace.spans()).unwrap(),
            "array framing must be byte-compatible with serde_json"
        );
    }

    #[test]
    fn empty_array_is_valid() {
        let w = SpanJsonWriter::new(Vec::new()).unwrap();
        assert_eq!(w.finish().unwrap(), b"[]");
    }

    #[test]
    fn json_lines_round_trip() {
        let trace = Trace::from_spans(spans());
        let mut w = SpanJsonLinesWriter::new(Vec::new());
        w.write_trace(&trace).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 2);
        let back = read_span_json_lines(&bytes[..]).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.spans()[0].name, "predict");
        assert_eq!(back.spans()[1].parent, trace.spans()[1].parent);
        assert_eq!(back.spans()[0].tag("batch_size").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn json_lines_skip_blank_lines() {
        let trace = Trace::from_spans(spans());
        let mut w = SpanJsonLinesWriter::new(Vec::new());
        w.write_trace(&trace).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.extend_from_slice(b"\n\n");
        let back = read_span_json_lines(&bytes[..]).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn json_lines_report_bad_line_numbers() {
        let trace = Trace::from_spans(spans());
        let mut w = SpanJsonLinesWriter::new(Vec::new());
        w.write_trace(&trace).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.extend_from_slice(b"not a span\n");
        match read_span_json_lines(&bytes[..]) {
            Err(ReadError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn concatenated_streams_stay_readable() {
        let mut w = SpanJsonLinesWriter::new(Vec::new());
        w.write_trace(&Trace::from_spans(spans())).unwrap();
        let mut bytes = w.finish().unwrap();
        let mut w2 = SpanJsonLinesWriter::new(Vec::new());
        w2.write_trace(&Trace::from_spans(spans())).unwrap();
        bytes.extend_from_slice(&w2.finish().unwrap());
        assert_eq!(read_span_json_lines(&bytes[..]).unwrap().len(), 4);
    }

    #[test]
    fn chrome_writer_emits_valid_envelope() {
        let trace = Trace::from_spans(spans());
        let mut w = ChromeTraceWriter::new(Vec::new()).unwrap();
        w.write_trace(&trace).unwrap();
        let json = String::from_utf8(w.finish().unwrap()).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[1]["tid"], 2);
    }

    #[test]
    fn folded_writer_streams_runs() {
        let c = reconstruct_parents(&Trace::from_spans(spans()));
        let mut w = FoldedStacksWriter::new(Vec::new());
        w.write_run(&c).unwrap();
        let out = String::from_utf8(w.finish().unwrap()).unwrap();
        assert!(out.contains("predict;conv2d/Conv2D "), "{out}");
    }
}
