//! The tracing server: aggregates spans published by all tracers into one
//! application timeline trace (§III-A: "spans are published to a tracing
//! server ... the tracing server aggregates the spans published by the
//! different tracers into one application timeline trace").

use crate::fxhash::FxHashMap;
use crate::span::{Span, SpanId, StackLevel, TraceId};
use crate::tracer::{ChannelTracer, SpanBuffer};
use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// An aggregated timeline trace: every span published during one (or more)
/// evaluation runs, in publication order.
///
/// The trace is an *indexed* store, not a bare span list: construction
/// buckets the spans per evaluation run once ([`Trace::trace_ids`] and
/// [`Trace::run_indices`] are O(1) reads), and the `SpanId → index` and
/// `parent → children` maps behind [`Trace::find`] / [`Trace::children_of`]
/// are built on first use and reused for every later lookup. Spans are
/// immutable once stored, so the indexes never go stale.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
    /// Distinct evaluation runs in first-appearance order, each with the
    /// indices of its spans (in appearance order). Built eagerly — the
    /// correlation engine consumes it for every trace.
    runs: Vec<(TraceId, Vec<usize>)>,
    /// Lazily built `SpanId → index` map (first occurrence wins, matching
    /// the historical linear-scan `find`).
    index_of: OnceLock<FxHashMap<SpanId, usize>>,
    /// Lazily built explicit-parent adjacency (indices in appearance order).
    children: OnceLock<FxHashMap<SpanId, Vec<usize>>>,
}

impl Trace {
    /// Builds a trace directly from spans (used by offline conversion paths
    /// and tests). Span order is preserved; the per-run buckets are built
    /// in this single pass.
    pub fn from_spans(spans: Vec<Span>) -> Self {
        let mut runs: Vec<(TraceId, Vec<usize>)> = Vec::new();
        let mut run_of: FxHashMap<TraceId, usize> = FxHashMap::default();
        for (i, s) in spans.iter().enumerate() {
            // Drained traces arrive grouped by run, so the common case is
            // "same bucket as the previous span" — check it before hashing.
            let bucket = match runs.last() {
                Some((tid, _)) if *tid == s.trace_id => runs.len() - 1,
                _ => *run_of.entry(s.trace_id).or_insert_with(|| {
                    runs.push((s.trace_id, Vec::new()));
                    runs.len() - 1
                }),
            };
            runs[bucket].1.push(i);
        }
        Self::from_parts(spans, runs)
    }

    /// Builds a trace from spans plus an already-known run index (the drain
    /// path, which grouped the spans itself). Invariant: `runs` lists every
    /// span index exactly once, grouped per distinct trace id.
    pub(crate) fn from_parts(spans: Vec<Span>, runs: Vec<(TraceId, Vec<usize>)>) -> Self {
        debug_assert_eq!(
            runs.iter().map(|(_, v)| v.len()).sum::<usize>(),
            spans.len()
        );
        Self {
            spans,
            runs,
            index_of: OnceLock::new(),
            children: OnceLock::new(),
        }
    }

    /// All spans, in publication order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the trace, returning its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans at a given stack level.
    pub fn at_level(&self, level: StackLevel) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.level == level)
    }

    /// The distinct stack levels present, ordered top to bottom.
    pub fn levels_present(&self) -> Vec<StackLevel> {
        StackLevel::ALL
            .iter()
            .copied()
            .filter(|l| self.spans.iter().any(|s| s.level == *l))
            .collect()
    }

    fn index(&self) -> &FxHashMap<SpanId, usize> {
        self.index_of.get_or_init(|| {
            let mut map = FxHashMap::default();
            map.reserve(self.spans.len());
            for (i, s) in self.spans.iter().enumerate() {
                map.entry(s.id).or_insert(i);
            }
            map
        })
    }

    /// Looks up a span by id through the built-once index map.
    pub fn find(&self, id: SpanId) -> Option<&Span> {
        self.index().get(&id).map(|&i| &self.spans[i])
    }

    /// Spans restricted to a single evaluation run.
    pub fn for_trace_id(&self, trace_id: TraceId) -> Trace {
        let spans = self
            .runs
            .iter()
            .find(|(tid, _)| *tid == trace_id)
            .map(|(_, idxs)| idxs.iter().map(|&i| self.spans[i].clone()).collect())
            .unwrap_or_default();
        Trace::from_spans(spans)
    }

    /// The distinct evaluation runs present, in first-appearance order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        self.runs.iter().map(|(tid, _)| *tid).collect()
    }

    /// The span indices of one evaluation run, in appearance order (empty
    /// when the run is absent). This is the borrow-everything entry point
    /// the correlation engine uses instead of filtering per run.
    pub fn run_indices(&self, trace_id: TraceId) -> &[usize] {
        self.runs
            .iter()
            .find(|(tid, _)| *tid == trace_id)
            .map(|(_, idxs)| idxs.as_slice())
            .unwrap_or(&[])
    }

    /// Consumes the trace into its span table and per-run index
    /// (first-appearance order) — the zero-copy decomposition the
    /// correlation engine uses for multi-run traces.
    pub(crate) fn into_parts(self) -> (Vec<Span>, Vec<(TraceId, Vec<usize>)>) {
        (self.spans, self.runs)
    }

    /// Clones the span table and run index only, leaving the lazy lookup
    /// maps unbuilt — for consumers (the borrowing `reconstruct_parents`
    /// wrapper) that immediately decompose the clone and would throw any
    /// copied maps away.
    pub(crate) fn clone_parts(&self) -> Trace {
        Trace::from_parts(self.spans.clone(), self.runs.clone())
    }

    /// Direct children of `parent` (explicit parent references only),
    /// through the built-once adjacency map.
    pub fn children_of(&self, parent: SpanId) -> Vec<&Span> {
        self.children
            .get_or_init(|| {
                let mut map: FxHashMap<SpanId, Vec<usize>> = FxHashMap::default();
                for (i, s) in self.spans.iter().enumerate() {
                    if let Some(p) = s.parent {
                        map.entry(p).or_default().push(i);
                    }
                }
                map
            })
            .get(&parent)
            .map(|v| v.iter().map(|&i| &self.spans[i]).collect())
            .unwrap_or_default()
    }

    /// Appends all spans of `other`, rebuilding the run buckets (the lazy
    /// lookup maps reset and rebuild on next use).
    pub fn merge(&mut self, other: Trace) {
        let mut spans = std::mem::take(&mut self.spans);
        spans.extend(other.spans);
        *self = Trace::from_spans(spans);
    }
}

/// Aggregation endpoint for all tracers in the process.
///
/// The server hands out [`ChannelTracer`]s; spans published through them are
/// buffered internally. [`TracingServer::drain`] collects everything
/// published so far into a [`Trace`], and [`TracingServer::fresh_trace_id`]
/// allocates per-run trace ids so a multi-run experiment can be demultiplexed
/// later.
///
/// # Concurrent producers
///
/// The channel carries atomic span batches, and [`TracingServer::drain`]
/// orders the result by trace id (stable within a trace). As long as each
/// evaluation run (= trace id) is produced by a single worker — the model
/// of the parallel evaluation engine, which gives each worker a
/// [`SpanBuffer`] flushed once per run — the assembled trace is therefore
/// *independent of cross-thread arrival order*: workers finishing in any
/// order yield byte-identical traces.
pub struct TracingServer {
    tx: Sender<Vec<Span>>,
    rx: Receiver<Vec<Span>>,
    registered: Mutex<HashMap<&'static str, ChannelTracer>>,
    next_trace_id: AtomicU64,
}

impl Default for TracingServer {
    fn default() -> Self {
        Self::new()
    }
}

impl TracingServer {
    /// Creates a new server with an empty buffer.
    pub fn new() -> Self {
        let (tx, rx) = crossbeam_channel::unbounded();
        Self {
            tx,
            rx,
            registered: Mutex::new(HashMap::new()),
            next_trace_id: AtomicU64::new(1),
        }
    }

    /// Creates (or returns the previously created) tracer named `name`.
    ///
    /// Multiple profilers may coexist within a stack level (§III-A: "multiple
    /// tracers (or profilers) can exist within a stack level"); each gets its
    /// own named tracer, all feeding the same timeline.
    pub fn tracer(&self, name: &'static str) -> ChannelTracer {
        let mut reg = self.registered.lock();
        reg.entry(name)
            .or_insert_with(|| ChannelTracer::new(name, self.tx.clone()))
            .clone()
    }

    /// Names of all registered tracers.
    pub fn tracer_names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.registered.lock().keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Creates a [`SpanBuffer`] over the tracer named `name`: spans reported
    /// through it accumulate locally and reach this server as one atomic
    /// batch on flush. This is the per-worker publication endpoint of the
    /// parallel evaluation engine.
    pub fn buffer(&self, name: &'static str) -> SpanBuffer {
        SpanBuffer::new(self.tracer(name))
    }

    /// Allocates a fresh per-run trace id.
    pub fn fresh_trace_id(&self) -> TraceId {
        TraceId(self.next_trace_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Collects the per-trace-id buckets of every span published since the
    /// previous drain — the shared O(n) body of [`TracingServer::drain`] and
    /// [`TracingServer::drain_each`]. Buckets iterate in ascending trace-id
    /// order; within one bucket the per-producer publication order is
    /// preserved (the channel is FIFO per sender and appends keep arrival
    /// order).
    fn drain_buckets(&self) -> BTreeMap<TraceId, Vec<Span>> {
        let mut buckets: BTreeMap<TraceId, Vec<Span>> = BTreeMap::new();
        for batch in self.rx.try_iter() {
            for span in batch {
                buckets.entry(span.trace_id).or_default().push(span);
            }
        }
        buckets
    }

    /// Collects every span published since the previous drain.
    ///
    /// Spans are returned grouped by ascending trace id via per-run bucketed
    /// accumulation — O(n) in the span count, no sort. The historical
    /// contract — "spans in publication order" — held only while every
    /// producer shared one thread; grouping by trace id keeps the order
    /// deterministic when producers of *different* runs race on the channel
    /// (within one run the per-producer publication order is preserved).
    pub fn drain(&self) -> Trace {
        let buckets = self.drain_buckets();
        let mut spans = Vec::with_capacity(buckets.values().map(Vec::len).sum());
        let mut runs = Vec::with_capacity(buckets.len());
        for (tid, bucket) in buckets {
            let start = spans.len();
            spans.extend(bucket);
            runs.push((tid, (start..spans.len()).collect()));
        }
        // The buckets *are* the run index — hand both to the trace directly
        // instead of having `from_spans` re-derive them.
        Trace::from_parts(spans, runs)
    }

    /// Drains like [`TracingServer::drain`] (same buffer, same grouped-by-
    /// trace-id order — it *is* a drain) but hands each span to `f` as the
    /// buckets stream out, without assembling a [`Trace`] or its index maps:
    /// spans can be fed straight into a [`crate::export::stream`] writer so
    /// the serialized trace is never materialized (see
    /// `examples/application_pipeline.rs`). Peak memory is the drained
    /// buckets themselves; no span is cloned or re-sorted on the way out.
    pub fn drain_each(&self, f: impl FnMut(Span)) {
        self.drain_buckets().into_values().flatten().for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanBuilder;
    use crate::tracer::Tracer;

    fn span(trace_id: TraceId, name: &str, level: StackLevel, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, level, trace_id).start(s).finish(e)
    }

    #[test]
    fn drain_collects_published_spans() {
        let server = TracingServer::new();
        let t1 = server.tracer("model");
        let t2 = server.tracer("layer");
        let id = server.fresh_trace_id();
        t1.report(span(id, "predict", StackLevel::Model, 0, 100));
        t2.report(span(id, "conv", StackLevel::Layer, 10, 60));
        let trace = server.drain();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.levels_present(),
            vec![StackLevel::Model, StackLevel::Layer]
        );
        // second drain is empty
        assert!(server.drain().is_empty());
    }

    #[test]
    fn tracer_is_memoized_by_name() {
        let server = TracingServer::new();
        let a = server.tracer("gpu");
        a.set_enabled(false);
        let b = server.tracer("gpu");
        assert!(!b.is_enabled(), "same underlying tracer must be returned");
        assert_eq!(server.tracer_names(), vec!["gpu"]);
    }

    #[test]
    fn fresh_trace_ids_are_distinct() {
        let server = TracingServer::new();
        let a = server.fresh_trace_id();
        let b = server.fresh_trace_id();
        assert_ne!(a, b);
    }

    #[test]
    fn trace_demultiplexes_runs() {
        let server = TracingServer::new();
        let t = server.tracer("model");
        let run1 = server.fresh_trace_id();
        let run2 = server.fresh_trace_id();
        t.report(span(run1, "p", StackLevel::Model, 0, 10));
        t.report(span(run2, "p", StackLevel::Model, 20, 35));
        let all = server.drain();
        assert_eq!(all.trace_ids(), vec![run1, run2]);
        assert_eq!(all.for_trace_id(run1).len(), 1);
        assert_eq!(all.for_trace_id(run2).spans()[0].start_ns, 20);
    }

    #[test]
    fn children_of_uses_explicit_parents() {
        let server = TracingServer::new();
        let t = server.tracer("fw");
        let id = server.fresh_trace_id();
        let parent = span(id, "predict", StackLevel::Model, 0, 100);
        let pid = parent.id;
        let child = SpanBuilder::new("conv", StackLevel::Layer, id)
            .start(5)
            .parent(pid)
            .finish(50);
        t.report(parent);
        t.report(child);
        let trace = server.drain();
        let kids = trace.children_of(pid);
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].name, "conv");
    }

    #[test]
    fn trace_ids_index_many_distinct_runs() {
        // Regression guard for the old accumulator, which did
        // `ids.contains(&trace_id)` per span — quadratic in distinct runs.
        // The bucketed store indexes runs at construction, so sweep-scale
        // JSONL imports stay linear. Sized at 100k runs so a quadratic
        // reintroduction (~5e9 id comparisons, tens of seconds even in a
        // release build) genuinely trips the wall-clock bound instead of
        // sliding under it, while the linear path stays far below.
        const RUNS: u64 = 100_000;
        let started = std::time::Instant::now();
        let mut spans: Vec<Span> = (0..RUNS)
            .map(|i| span(TraceId(i), "p", StackLevel::Model, i, i + 1))
            .collect();
        // Non-contiguous reappearance: early runs publish again at the end.
        spans.push(span(TraceId(17), "late", StackLevel::Layer, 50, 60));
        let trace = Trace::from_spans(spans);
        let ids = trace.trace_ids();
        assert_eq!(ids.len(), RUNS as usize, "reappearance adds no dup id");
        assert_eq!(ids[0], TraceId(0));
        assert_eq!(
            ids[RUNS as usize - 1],
            TraceId(RUNS - 1),
            "first-appearance order kept"
        );
        assert_eq!(trace.run_indices(TraceId(17)), &[17, RUNS as usize]);
        assert_eq!(trace.for_trace_id(TraceId(17)).len(), 2);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "{RUNS}-run indexing took {:?} — quadratic accumulation is back",
            started.elapsed()
        );
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Trace::from_spans(vec![span(TraceId(1), "x", StackLevel::Model, 0, 1)]);
        let b = Trace::from_spans(vec![span(TraceId(2), "y", StackLevel::Layer, 2, 3)]);
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn drain_is_independent_of_producer_arrival_order() {
        // Regression test for the latent ordering assumption: the old drain
        // returned raw arrival order, which was deterministic only because
        // all producers shared one thread. Simulate two workers finishing
        // out of submission order: the run-2 buffer flushes before run 1.
        let build = |server: &TracingServer, run: TraceId, names: [&str; 2]| {
            let buffer = server.buffer("worker");
            buffer.report(span(run, names[0], StackLevel::Model, 0, 100));
            buffer.report(span(run, names[1], StackLevel::Layer, 10, 60));
            buffer
        };

        let in_order = TracingServer::new();
        let b1 = build(&in_order, TraceId(1), ["p1", "l1"]);
        let b2 = build(&in_order, TraceId(2), ["p2", "l2"]);
        b1.flush();
        b2.flush();
        let expected: Vec<String> = in_order
            .drain()
            .into_spans()
            .into_iter()
            .map(|s| s.name)
            .collect();

        let out_of_order = TracingServer::new();
        let b1 = build(&out_of_order, TraceId(1), ["p1", "l1"]);
        let b2 = build(&out_of_order, TraceId(2), ["p2", "l2"]);
        b2.flush(); // run 2 arrives first
        b1.flush();
        let got: Vec<String> = out_of_order
            .drain()
            .into_spans()
            .into_iter()
            .map(|s| s.name)
            .collect();

        assert_eq!(got, expected, "drain must group by trace id, not arrival");
        assert_eq!(got, vec!["p1", "l1", "p2", "l2"]);
    }

    #[test]
    fn drain_each_streams_in_drain_order() {
        let expected = {
            let server = TracingServer::new();
            let b2 = server.buffer("w");
            b2.report(span(TraceId(2), "p2", StackLevel::Model, 0, 10));
            let b1 = server.buffer("w");
            b1.report(span(TraceId(1), "p1", StackLevel::Model, 0, 10));
            b2.flush();
            b1.flush();
            server
                .drain()
                .into_spans()
                .into_iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
        };
        let server = TracingServer::new();
        let b2 = server.buffer("w");
        b2.report(span(TraceId(2), "p2", StackLevel::Model, 0, 10));
        let b1 = server.buffer("w");
        b1.report(span(TraceId(1), "p1", StackLevel::Model, 0, 10));
        b2.flush();
        b1.flush();
        let mut streamed = Vec::new();
        server.drain_each(|s| streamed.push(s.name));
        assert_eq!(streamed, expected);
        assert_eq!(streamed, vec!["p1", "p2"], "grouped by trace id");
        assert!(server.drain().is_empty(), "drain_each consumes the buffer");
    }

    #[test]
    fn spans_survive_cross_thread_publication() {
        let server = TracingServer::new();
        let id = server.fresh_trace_id();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tracer = server.tracer("gpu");
                std::thread::spawn(move || {
                    for j in 0..100u64 {
                        tracer.report(
                            SpanBuilder::new(format!("k{i}_{j}"), StackLevel::Kernel, id)
                                .start(j)
                                .finish(j + 1),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.drain().len(), 400);
    }
}
