//! The tracing server: aggregates spans published by all tracers into one
//! application timeline trace (§III-A: "spans are published to a tracing
//! server ... the tracing server aggregates the spans published by the
//! different tracers into one application timeline trace").

use crate::span::{Span, SpanId, StackLevel, TraceId};
use crate::tracer::{ChannelTracer, SpanBuffer};
use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An aggregated timeline trace: every span published during one (or more)
/// evaluation runs, in publication order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// Builds a trace directly from spans (used by offline conversion paths
    /// and tests).
    pub fn from_spans(spans: Vec<Span>) -> Self {
        Self { spans }
    }

    /// All spans, in publication order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the trace, returning its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans at a given stack level.
    pub fn at_level(&self, level: StackLevel) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.level == level)
    }

    /// The distinct stack levels present, ordered top to bottom.
    pub fn levels_present(&self) -> Vec<StackLevel> {
        StackLevel::ALL
            .iter()
            .copied()
            .filter(|l| self.spans.iter().any(|s| s.level == *l))
            .collect()
    }

    /// Looks up a span by id (linear scan; traces are processed offline).
    pub fn find(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Spans restricted to a single evaluation run.
    pub fn for_trace_id(&self, trace_id: TraceId) -> Trace {
        Trace {
            spans: self
                .spans
                .iter()
                .filter(|s| s.trace_id == trace_id)
                .cloned()
                .collect(),
        }
    }

    /// The distinct evaluation runs present.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = Vec::new();
        for s in &self.spans {
            if !ids.contains(&s.trace_id) {
                ids.push(s.trace_id);
            }
        }
        ids
    }

    /// Direct children of `parent` (explicit parent references only).
    pub fn children_of(&self, parent: SpanId) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect()
    }

    /// Appends all spans of `other`.
    pub fn merge(&mut self, other: Trace) {
        self.spans.extend(other.spans);
    }
}

/// Aggregation endpoint for all tracers in the process.
///
/// The server hands out [`ChannelTracer`]s; spans published through them are
/// buffered internally. [`TracingServer::drain`] collects everything
/// published so far into a [`Trace`], and [`TracingServer::fresh_trace_id`]
/// allocates per-run trace ids so a multi-run experiment can be demultiplexed
/// later.
///
/// # Concurrent producers
///
/// The channel carries atomic span batches, and [`TracingServer::drain`]
/// orders the result by trace id (stable within a trace). As long as each
/// evaluation run (= trace id) is produced by a single worker — the model
/// of the parallel evaluation engine, which gives each worker a
/// [`SpanBuffer`] flushed once per run — the assembled trace is therefore
/// *independent of cross-thread arrival order*: workers finishing in any
/// order yield byte-identical traces.
pub struct TracingServer {
    tx: Sender<Vec<Span>>,
    rx: Receiver<Vec<Span>>,
    registered: Mutex<HashMap<&'static str, ChannelTracer>>,
    next_trace_id: AtomicU64,
}

impl Default for TracingServer {
    fn default() -> Self {
        Self::new()
    }
}

impl TracingServer {
    /// Creates a new server with an empty buffer.
    pub fn new() -> Self {
        let (tx, rx) = crossbeam_channel::unbounded();
        Self {
            tx,
            rx,
            registered: Mutex::new(HashMap::new()),
            next_trace_id: AtomicU64::new(1),
        }
    }

    /// Creates (or returns the previously created) tracer named `name`.
    ///
    /// Multiple profilers may coexist within a stack level (§III-A: "multiple
    /// tracers (or profilers) can exist within a stack level"); each gets its
    /// own named tracer, all feeding the same timeline.
    pub fn tracer(&self, name: &'static str) -> ChannelTracer {
        let mut reg = self.registered.lock();
        reg.entry(name)
            .or_insert_with(|| ChannelTracer::new(name, self.tx.clone()))
            .clone()
    }

    /// Names of all registered tracers.
    pub fn tracer_names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.registered.lock().keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Creates a [`SpanBuffer`] over the tracer named `name`: spans reported
    /// through it accumulate locally and reach this server as one atomic
    /// batch on flush. This is the per-worker publication endpoint of the
    /// parallel evaluation engine.
    pub fn buffer(&self, name: &'static str) -> SpanBuffer {
        SpanBuffer::new(self.tracer(name))
    }

    /// Allocates a fresh per-run trace id.
    pub fn fresh_trace_id(&self) -> TraceId {
        TraceId(self.next_trace_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Collects every span published since the previous drain.
    ///
    /// Spans are returned grouped by ascending trace id; within one trace id
    /// the per-producer publication order is preserved (the sort is stable
    /// and the channel is FIFO per sender). The historical contract — "spans
    /// in publication order" — held only while every producer shared one
    /// thread; grouping by trace id restores a deterministic order when
    /// producers of *different* runs race on the channel.
    pub fn drain(&self) -> Trace {
        let mut spans: Vec<Span> = self.rx.try_iter().flatten().collect();
        spans.sort_by_key(|s| s.trace_id);
        Trace { spans }
    }

    /// Drains like [`TracingServer::drain`] (same buffer, same grouped-by-
    /// trace-id order — it *is* a drain) but hands each span to `f` instead
    /// of returning a [`Trace`]: spans can be fed straight into a
    /// [`crate::export::stream`] writer so the serialized trace is never
    /// materialized (see `examples/application_pipeline.rs`).
    pub fn drain_each(&self, f: impl FnMut(Span)) {
        self.drain().into_spans().into_iter().for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanBuilder;
    use crate::tracer::Tracer;

    fn span(trace_id: TraceId, name: &str, level: StackLevel, s: u64, e: u64) -> Span {
        SpanBuilder::new(name, level, trace_id).start(s).finish(e)
    }

    #[test]
    fn drain_collects_published_spans() {
        let server = TracingServer::new();
        let t1 = server.tracer("model");
        let t2 = server.tracer("layer");
        let id = server.fresh_trace_id();
        t1.report(span(id, "predict", StackLevel::Model, 0, 100));
        t2.report(span(id, "conv", StackLevel::Layer, 10, 60));
        let trace = server.drain();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.levels_present(),
            vec![StackLevel::Model, StackLevel::Layer]
        );
        // second drain is empty
        assert!(server.drain().is_empty());
    }

    #[test]
    fn tracer_is_memoized_by_name() {
        let server = TracingServer::new();
        let a = server.tracer("gpu");
        a.set_enabled(false);
        let b = server.tracer("gpu");
        assert!(!b.is_enabled(), "same underlying tracer must be returned");
        assert_eq!(server.tracer_names(), vec!["gpu"]);
    }

    #[test]
    fn fresh_trace_ids_are_distinct() {
        let server = TracingServer::new();
        let a = server.fresh_trace_id();
        let b = server.fresh_trace_id();
        assert_ne!(a, b);
    }

    #[test]
    fn trace_demultiplexes_runs() {
        let server = TracingServer::new();
        let t = server.tracer("model");
        let run1 = server.fresh_trace_id();
        let run2 = server.fresh_trace_id();
        t.report(span(run1, "p", StackLevel::Model, 0, 10));
        t.report(span(run2, "p", StackLevel::Model, 20, 35));
        let all = server.drain();
        assert_eq!(all.trace_ids(), vec![run1, run2]);
        assert_eq!(all.for_trace_id(run1).len(), 1);
        assert_eq!(all.for_trace_id(run2).spans()[0].start_ns, 20);
    }

    #[test]
    fn children_of_uses_explicit_parents() {
        let server = TracingServer::new();
        let t = server.tracer("fw");
        let id = server.fresh_trace_id();
        let parent = span(id, "predict", StackLevel::Model, 0, 100);
        let pid = parent.id;
        let child = SpanBuilder::new("conv", StackLevel::Layer, id)
            .start(5)
            .parent(pid)
            .finish(50);
        t.report(parent);
        t.report(child);
        let trace = server.drain();
        let kids = trace.children_of(pid);
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].name, "conv");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Trace::from_spans(vec![span(TraceId(1), "x", StackLevel::Model, 0, 1)]);
        let b = Trace::from_spans(vec![span(TraceId(2), "y", StackLevel::Layer, 2, 3)]);
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn drain_is_independent_of_producer_arrival_order() {
        // Regression test for the latent ordering assumption: the old drain
        // returned raw arrival order, which was deterministic only because
        // all producers shared one thread. Simulate two workers finishing
        // out of submission order: the run-2 buffer flushes before run 1.
        let build = |server: &TracingServer, run: TraceId, names: [&str; 2]| {
            let buffer = server.buffer("worker");
            buffer.report(span(run, names[0], StackLevel::Model, 0, 100));
            buffer.report(span(run, names[1], StackLevel::Layer, 10, 60));
            buffer
        };

        let in_order = TracingServer::new();
        let b1 = build(&in_order, TraceId(1), ["p1", "l1"]);
        let b2 = build(&in_order, TraceId(2), ["p2", "l2"]);
        b1.flush();
        b2.flush();
        let expected: Vec<String> = in_order
            .drain()
            .into_spans()
            .into_iter()
            .map(|s| s.name)
            .collect();

        let out_of_order = TracingServer::new();
        let b1 = build(&out_of_order, TraceId(1), ["p1", "l1"]);
        let b2 = build(&out_of_order, TraceId(2), ["p2", "l2"]);
        b2.flush(); // run 2 arrives first
        b1.flush();
        let got: Vec<String> = out_of_order
            .drain()
            .into_spans()
            .into_iter()
            .map(|s| s.name)
            .collect();

        assert_eq!(got, expected, "drain must group by trace id, not arrival");
        assert_eq!(got, vec!["p1", "l1", "p2", "l2"]);
    }

    #[test]
    fn drain_each_streams_in_drain_order() {
        let expected = {
            let server = TracingServer::new();
            let b2 = server.buffer("w");
            b2.report(span(TraceId(2), "p2", StackLevel::Model, 0, 10));
            let b1 = server.buffer("w");
            b1.report(span(TraceId(1), "p1", StackLevel::Model, 0, 10));
            b2.flush();
            b1.flush();
            server
                .drain()
                .into_spans()
                .into_iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
        };
        let server = TracingServer::new();
        let b2 = server.buffer("w");
        b2.report(span(TraceId(2), "p2", StackLevel::Model, 0, 10));
        let b1 = server.buffer("w");
        b1.report(span(TraceId(1), "p1", StackLevel::Model, 0, 10));
        b2.flush();
        b1.flush();
        let mut streamed = Vec::new();
        server.drain_each(|s| streamed.push(s.name));
        assert_eq!(streamed, expected);
        assert_eq!(streamed, vec!["p1", "p2"], "grouped by trace id");
        assert!(server.drain().is_empty(), "drain_each consumes the buffer");
    }

    #[test]
    fn spans_survive_cross_thread_publication() {
        let server = TracingServer::new();
        let id = server.fresh_trace_id();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tracer = server.tracer("gpu");
                std::thread::spawn(move || {
                    for j in 0..100u64 {
                        tracer.report(
                            SpanBuilder::new(format!("k{i}_{j}"), StackLevel::Kernel, id)
                                .start(j)
                                .finish(j + 1),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.drain().len(), 400);
    }
}
