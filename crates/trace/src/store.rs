//! Arena/struct-of-arrays span storage — the hot-path representation.
//!
//! A [`crate::span::Span`] is the right *interchange* shape (owned,
//! self-contained, serde-friendly) but the wrong *resident* shape: every
//! span carries an owned `String` name, a `Vec` of tags whose keys are
//! owned `String`s, and a `Vec` of logs — three-plus allocations per span
//! on the publish→drain→correlate path. A [`SpanStore`] keeps the same
//! data columnar: fixed-width fields (ids, intervals, levels, parents)
//! live in flat vectors, names/tag keys/string tag values are interned
//! [`Symbol`]s in one [`NameTable`], and tags/logs live in shared arenas
//! addressed by per-span ranges. Pushing a span with an already-known name
//! allocates nothing; a 100k-span ingest performs a few dozen string
//! allocations instead of several hundred thousand.
//!
//! The store also pre-computes each span's async-correlation facts (first
//! `correlation_id` tag, `async_launch` / `async_execution` flags) at push
//! time, so [`crate::correlate::CorrelationEngine::correlate_store`]
//! classifies roles with a column scan instead of per-span string-keyed
//! tag walks. The precomputation replicates
//! [`crate::span::Span::correlation_id`] /
//! [`crate::span::Span::is_async_launch`] semantics exactly (first
//! matching tag wins; `as_u64` accepts `U64` and non-negative `I64`) — the
//! store-vs-span correlation oracle test pins the equivalence.
//!
//! Conversion back to the interchange shape is always available:
//! [`SpanStore::materialize`] rebuilds a byte-identical [`Span`] (tag and
//! log order preserved), and [`SpanStore::to_trace`] rebuilds a [`Trace`]
//! with the same run bucketing `Trace::from_spans` would derive.

use crate::fxhash::FxHashMap;
use crate::intern::{NameTable, Symbol};
use crate::server::Trace;
use crate::span::{tag_keys, LogEvent, Span, SpanId, StackLevel, TagValue, TraceId};

/// A borrowed tag value — [`TagValue`] without the owned string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TagRef<'a> {
    /// A string value.
    Str(&'a str),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl<'a> TagRef<'a> {
    /// Converts to an owned [`TagValue`].
    pub fn to_value(self) -> TagValue {
        match self {
            TagRef::Str(s) => TagValue::Str(s.to_owned()),
            TagRef::I64(v) => TagValue::I64(v),
            TagRef::U64(v) => TagValue::U64(v),
            TagRef::F64(v) => TagValue::F64(v),
            TagRef::Bool(v) => TagValue::Bool(v),
        }
    }
}

impl<'a> From<&'a TagValue> for TagRef<'a> {
    fn from(v: &'a TagValue) -> Self {
        match v {
            TagValue::Str(s) => TagRef::Str(s),
            TagValue::I64(v) => TagRef::I64(*v),
            TagValue::U64(v) => TagRef::U64(*v),
            TagValue::F64(v) => TagRef::F64(*v),
            TagValue::Bool(v) => TagRef::Bool(*v),
        }
    }
}

/// A tag value with the string case interned — the arena cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TagCell {
    Str(Symbol),
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
}

/// Pre-computed async-correlation facts for one span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct AsyncInfo {
    /// The first `correlation_id` tag's value, when it was integer-typed.
    pub(crate) cid: u64,
    /// [`HAS_CID`] / [`IS_LAUNCH`] / [`IS_EXEC`] bits (plus internal
    /// first-occurrence markers).
    pub(crate) flags: u8,
}

/// The span carries an integer `correlation_id` tag.
pub(crate) const HAS_CID: u8 = 1;
/// The span's first `async_launch` tag is `Bool(true)`.
pub(crate) const IS_LAUNCH: u8 = 2;
/// The span's first `async_execution` tag is `Bool(true)`.
pub(crate) const IS_EXEC: u8 = 4;
const SEEN_CID: u8 = 8;
const SEEN_LAUNCH: u8 = 16;
const SEEN_EXEC: u8 = 32;

/// Columnar span storage with interned strings and shared tag/log arenas.
///
/// Spans keep their push order; run bucketing (`trace_id → span indices`,
/// first-appearance order with a same-as-previous fast path) is maintained
/// incrementally, exactly as [`Trace::from_spans`] derives it.
#[derive(Debug, Clone)]
pub struct SpanStore {
    names: NameTable,
    sym_cid: Symbol,
    sym_launch: Symbol,
    sym_exec: Symbol,
    ids: Vec<SpanId>,
    trace_ids: Vec<TraceId>,
    name_syms: Vec<Symbol>,
    levels: Vec<StackLevel>,
    starts: Vec<u64>,
    ends: Vec<u64>,
    parents: Vec<Option<SpanId>>,
    tag_ranges: Vec<(u32, u32)>,
    tag_keys_col: Vec<Symbol>,
    tag_cells: Vec<TagCell>,
    log_ranges: Vec<(u32, u32)>,
    log_ats: Vec<u64>,
    log_msg_ranges: Vec<(u32, u32)>,
    log_bytes: Vec<u8>,
    async_infos: Vec<AsyncInfo>,
    runs: Vec<(TraceId, Vec<u32>)>,
    run_of: FxHashMap<TraceId, usize>,
}

impl SpanStore {
    /// Creates an empty store. The three async-correlation tag keys are
    /// interned eagerly (symbols 0–2) so tag pushes classify them by
    /// symbol compare instead of string compare.
    pub fn new() -> Self {
        let mut names = NameTable::new();
        let sym_cid = names.intern(tag_keys::CORRELATION_ID);
        let sym_launch = names.intern(tag_keys::ASYNC_LAUNCH);
        let sym_exec = names.intern(tag_keys::ASYNC_EXECUTION);
        Self {
            names,
            sym_cid,
            sym_launch,
            sym_exec,
            ids: Vec::new(),
            trace_ids: Vec::new(),
            name_syms: Vec::new(),
            levels: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            parents: Vec::new(),
            tag_ranges: Vec::new(),
            tag_keys_col: Vec::new(),
            tag_cells: Vec::new(),
            log_ranges: Vec::new(),
            log_ats: Vec::new(),
            log_msg_ranges: Vec::new(),
            log_bytes: Vec::new(),
            async_infos: Vec::new(),
            runs: Vec::new(),
            run_of: FxHashMap::default(),
        }
    }

    /// Creates an empty store with room for `spans` spans.
    pub fn with_capacity(spans: usize) -> Self {
        let mut s = Self::new();
        s.ids.reserve(spans);
        s.trace_ids.reserve(spans);
        s.name_syms.reserve(spans);
        s.levels.reserve(spans);
        s.starts.reserve(spans);
        s.ends.reserve(spans);
        s.parents.reserve(spans);
        s.tag_ranges.reserve(spans);
        s.log_ranges.reserve(spans);
        s.async_infos.reserve(spans);
        s
    }

    /// Builds a store from a slice of interchange spans.
    pub fn from_spans(spans: &[Span]) -> Self {
        let mut store = Self::with_capacity(spans.len());
        for s in spans {
            store.push(s);
        }
        store
    }

    /// Number of spans stored.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store holds no spans.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The store's string table.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Appends a span, interning its strings. Returns the span's index.
    pub fn push(&mut self, span: &Span) -> u32 {
        let idx = self.push_raw(
            span.id,
            span.trace_id,
            &span.name,
            span.level,
            span.start_ns,
            span.end_ns,
            span.parent,
        );
        for (k, v) in &span.tags {
            self.raw_tag(k, TagRef::from(v));
        }
        for log in &span.logs {
            self.raw_log(log.at_ns, &log.message);
        }
        idx
    }

    /// Appends a span consumed by value (the drain path). Strings still
    /// intern — the owned allocations are reused only on first appearance.
    pub fn push_owned(&mut self, span: Span) -> u32 {
        self.push(&span)
    }

    /// Appends a span's fixed-width fields without tags or logs; returns
    /// its index. Follow with [`SpanStore::raw_tag`] / [`SpanStore::raw_log`]
    /// *before the next push* — tags and logs live in shared arenas and
    /// must stay contiguous per span.
    #[allow(clippy::too_many_arguments)]
    pub fn push_raw(
        &mut self,
        id: SpanId,
        trace_id: TraceId,
        name: &str,
        level: StackLevel,
        start_ns: u64,
        end_ns: u64,
        parent: Option<SpanId>,
    ) -> u32 {
        let sym = self.names.intern(name);
        self.push_raw_interned(id, trace_id, sym, level, start_ns, end_ns, parent)
    }

    /// [`SpanStore::push_raw`] with a pre-interned name (the binary-ingest
    /// path, which remaps the stream's symbol table once per distinct name).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_raw_interned(
        &mut self,
        id: SpanId,
        trace_id: TraceId,
        name: Symbol,
        level: StackLevel,
        start_ns: u64,
        end_ns: u64,
        parent: Option<SpanId>,
    ) -> u32 {
        let idx = u32::try_from(self.ids.len()).expect("span store exceeds u32 indices");
        self.ids.push(id);
        self.trace_ids.push(trace_id);
        self.name_syms.push(name);
        self.levels.push(level);
        self.starts.push(start_ns);
        self.ends.push(end_ns);
        self.parents.push(parent);
        let tag_off = u32::try_from(self.tag_keys_col.len()).expect("tag arena exceeds u32");
        self.tag_ranges.push((tag_off, 0));
        let log_off = u32::try_from(self.log_ats.len()).expect("log arena exceeds u32");
        self.log_ranges.push((log_off, 0));
        self.async_infos.push(AsyncInfo::default());
        // Run bucketing, same fast path as `Trace::from_spans`: drained
        // spans arrive grouped per run, so check the last bucket first.
        let bucket = match self.runs.last() {
            Some((tid, _)) if *tid == trace_id => self.runs.len() - 1,
            _ => *self.run_of.entry(trace_id).or_insert_with(|| {
                self.runs.push((trace_id, Vec::new()));
                self.runs.len() - 1
            }),
        };
        self.runs[bucket].1.push(idx);
        idx
    }

    /// Appends a tag to the most recently pushed span.
    pub fn raw_tag(&mut self, key: &str, value: TagRef<'_>) {
        let key_sym = self.names.intern(key);
        let cell = match value {
            TagRef::Str(s) => TagCell::Str(self.names.intern(s)),
            TagRef::I64(v) => TagCell::I64(v),
            TagRef::U64(v) => TagCell::U64(v),
            TagRef::F64(v) => TagCell::F64(v),
            TagRef::Bool(v) => TagCell::Bool(v),
        };
        self.raw_tag_interned(key_sym, cell);
    }

    /// [`SpanStore::raw_tag`] with pre-interned key and value.
    pub(crate) fn raw_tag_interned(&mut self, key: Symbol, cell: TagCell) {
        self.tag_keys_col.push(key);
        self.tag_cells.push(cell);
        self.tag_ranges.last_mut().expect("push before raw_tag").1 += 1;
        // First-occurrence async facts, mirroring `Span::tag` (first match
        // wins) + `TagValue::as_u64` / `Bool(true)` checks.
        let info = self.async_infos.last_mut().expect("push before raw_tag");
        if key == self.sym_cid && info.flags & SEEN_CID == 0 {
            info.flags |= SEEN_CID;
            let as_u64 = match cell {
                TagCell::U64(v) => Some(v),
                TagCell::I64(v) if v >= 0 => Some(v as u64),
                _ => None,
            };
            if let Some(cid) = as_u64 {
                info.cid = cid;
                info.flags |= HAS_CID;
            }
        } else if key == self.sym_launch && info.flags & SEEN_LAUNCH == 0 {
            info.flags |= SEEN_LAUNCH;
            if cell == TagCell::Bool(true) {
                info.flags |= IS_LAUNCH;
            }
        } else if key == self.sym_exec && info.flags & SEEN_EXEC == 0 {
            info.flags |= SEEN_EXEC;
            if cell == TagCell::Bool(true) {
                info.flags |= IS_EXEC;
            }
        }
    }

    /// Appends a log event to the most recently pushed span.
    pub fn raw_log(&mut self, at_ns: u64, message: &str) {
        self.log_ats.push(at_ns);
        let off = u32::try_from(self.log_bytes.len()).expect("log arena exceeds u32");
        self.log_bytes.extend_from_slice(message.as_bytes());
        self.log_msg_ranges.push((
            off,
            u32::try_from(message.len()).expect("log message too long"),
        ));
        self.log_ranges.last_mut().expect("push before raw_log").1 += 1;
    }

    /// Borrow-view of the span at `idx`. Panics when out of range.
    pub fn view(&self, idx: u32) -> SpanView<'_> {
        assert!((idx as usize) < self.len(), "span index out of range");
        SpanView { store: self, idx }
    }

    /// Iterates all spans as views, in push order.
    pub fn iter(&self) -> impl Iterator<Item = SpanView<'_>> {
        (0..self.len() as u32).map(move |idx| SpanView { store: self, idx })
    }

    /// Rebuilds the interchange [`Span`] at `idx` — tag and log order
    /// preserved, so serializing it is byte-identical to serializing the
    /// span that was pushed.
    pub fn materialize(&self, idx: u32) -> Span {
        let i = idx as usize;
        let (toff, tlen) = self.tag_ranges[i];
        let tags = (toff..toff + tlen)
            .map(|t| {
                let t = t as usize;
                (
                    self.names.resolve(self.tag_keys_col[t]).to_owned(),
                    self.tag_value(self.tag_cells[t]),
                )
            })
            .collect();
        let (loff, llen) = self.log_ranges[i];
        let logs = (loff..loff + llen)
            .map(|l| {
                let l = l as usize;
                LogEvent {
                    at_ns: self.log_ats[l],
                    message: self.log_message(l).to_owned(),
                }
            })
            .collect();
        Span {
            id: self.ids[i],
            trace_id: self.trace_ids[i],
            name: self.names.resolve(self.name_syms[i]).to_owned(),
            level: self.levels[i],
            start_ns: self.starts[i],
            end_ns: self.ends[i],
            parent: self.parents[i],
            tags,
            logs,
        }
    }

    /// Rebuilds a [`Trace`] over all spans, reusing the incrementally
    /// maintained run index instead of re-deriving it.
    pub fn to_trace(&self) -> Trace {
        let spans = (0..self.len() as u32)
            .map(|i| self.materialize(i))
            .collect();
        let runs = self
            .runs
            .iter()
            .map(|(tid, idxs)| (*tid, idxs.iter().map(|&i| i as usize).collect()))
            .collect();
        Trace::from_parts(spans, runs)
    }

    /// The distinct trace ids present, in first-appearance order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        self.runs.iter().map(|(tid, _)| *tid).collect()
    }

    /// Clears all spans and arenas, retaining interned names and capacity
    /// (the long-lived daemon-session reuse path).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.trace_ids.clear();
        self.name_syms.clear();
        self.levels.clear();
        self.starts.clear();
        self.ends.clear();
        self.parents.clear();
        self.tag_ranges.clear();
        self.tag_keys_col.clear();
        self.tag_cells.clear();
        self.log_ranges.clear();
        self.log_ats.clear();
        self.log_msg_ranges.clear();
        self.log_bytes.clear();
        self.async_infos.clear();
        self.runs.clear();
        self.run_of.clear();
    }

    pub(crate) fn names_mut(&mut self) -> &mut NameTable {
        &mut self.names
    }

    pub(crate) fn run_buckets(&self) -> &[(TraceId, Vec<u32>)] {
        &self.runs
    }

    pub(crate) fn async_info(&self, idx: u32) -> AsyncInfo {
        self.async_infos[idx as usize]
    }

    pub(crate) fn id_at(&self, idx: u32) -> SpanId {
        self.ids[idx as usize]
    }

    pub(crate) fn level_at(&self, idx: u32) -> StackLevel {
        self.levels[idx as usize]
    }

    pub(crate) fn interval_at(&self, idx: u32) -> (u64, u64) {
        (self.starts[idx as usize], self.ends[idx as usize])
    }

    pub(crate) fn parent_at(&self, idx: u32) -> Option<SpanId> {
        self.parents[idx as usize]
    }

    /// The span's tag-arena index range.
    pub(crate) fn tag_range(&self, idx: u32) -> std::ops::Range<usize> {
        let (off, len) = self.tag_ranges[idx as usize];
        off as usize..(off + len) as usize
    }

    pub(crate) fn tag_key_at(&self, arena_idx: usize) -> Symbol {
        self.tag_keys_col[arena_idx]
    }

    /// Resolves an arena tag slot to an owned `(key, value)` pair — the
    /// materialization step for tags referenced across spans (merged async
    /// launch tags).
    pub(crate) fn tag_pair_at(&self, arena_idx: usize) -> (String, TagValue) {
        (
            self.names.resolve(self.tag_keys_col[arena_idx]).to_owned(),
            self.tag_value(self.tag_cells[arena_idx]),
        )
    }

    fn tag_value(&self, cell: TagCell) -> TagValue {
        match cell {
            TagCell::Str(s) => TagValue::Str(self.names.resolve(s).to_owned()),
            TagCell::I64(v) => TagValue::I64(v),
            TagCell::U64(v) => TagValue::U64(v),
            TagCell::F64(v) => TagValue::F64(v),
            TagCell::Bool(v) => TagValue::Bool(v),
        }
    }

    fn tag_ref(&self, cell: TagCell) -> TagRef<'_> {
        match cell {
            TagCell::Str(s) => TagRef::Str(self.names.resolve(s)),
            TagCell::I64(v) => TagRef::I64(v),
            TagCell::U64(v) => TagRef::U64(v),
            TagCell::F64(v) => TagRef::F64(v),
            TagCell::Bool(v) => TagRef::Bool(v),
        }
    }

    fn log_message(&self, arena_idx: usize) -> &str {
        let (off, len) = self.log_msg_ranges[arena_idx];
        std::str::from_utf8(&self.log_bytes[off as usize..(off + len) as usize])
            .expect("log arena holds the bytes of valid strings")
    }
}

impl Default for SpanStore {
    fn default() -> Self {
        Self::new()
    }
}

/// A borrowed view of one span in a [`SpanStore`] — field access without
/// materializing an owned [`Span`].
#[derive(Debug, Clone, Copy)]
pub struct SpanView<'a> {
    store: &'a SpanStore,
    idx: u32,
}

impl<'a> SpanView<'a> {
    /// The span's index in its store.
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Span id.
    pub fn id(&self) -> SpanId {
        self.store.ids[self.idx as usize]
    }

    /// Evaluation-run id.
    pub fn trace_id(&self) -> TraceId {
        self.store.trace_ids[self.idx as usize]
    }

    /// Span name (borrowed from the store's string table).
    pub fn name(&self) -> &'a str {
        self.store
            .names
            .resolve(self.store.name_syms[self.idx as usize])
    }

    /// Stack level.
    pub fn level(&self) -> StackLevel {
        self.store.levels[self.idx as usize]
    }

    /// Start timestamp, ns.
    pub fn start_ns(&self) -> u64 {
        self.store.starts[self.idx as usize]
    }

    /// End timestamp, ns.
    pub fn end_ns(&self) -> u64 {
        self.store.ends[self.idx as usize]
    }

    /// Explicit parent, if any.
    pub fn parent(&self) -> Option<SpanId> {
        self.store.parents[self.idx as usize]
    }

    /// Iterates the span's tags as borrowed `(key, value)` pairs, in push
    /// order.
    pub fn tags(&self) -> impl Iterator<Item = (&'a str, TagRef<'a>)> + '_ {
        let store = self.store;
        store.tag_range(self.idx).map(move |t| {
            (
                store.names.resolve(store.tag_keys_col[t]),
                store.tag_ref(store.tag_cells[t]),
            )
        })
    }

    /// Number of tags.
    pub fn tag_count(&self) -> usize {
        self.store.tag_ranges[self.idx as usize].1 as usize
    }

    /// Iterates the span's logs as `(at_ns, message)` pairs, in push order.
    pub fn logs(&self) -> impl Iterator<Item = (u64, &'a str)> + '_ {
        let store = self.store;
        let (off, len) = store.log_ranges[self.idx as usize];
        (off..off + len).map(move |l| (store.log_ats[l as usize], store.log_message(l as usize)))
    }

    /// Number of log events.
    pub fn log_count(&self) -> usize {
        self.store.log_ranges[self.idx as usize].1 as usize
    }

    /// Materializes an owned [`Span`].
    pub fn to_span(&self) -> Span {
        self.store.materialize(self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanBuilder;

    fn sample() -> Vec<Span> {
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .tag("batch_size", 4u64)
            .log(5, "warmup done")
            .finish(1_000_000);
        let pid = model.id;
        let layer = SpanBuilder::new("conv2d/Conv2D", StackLevel::Layer, TraceId(1))
            .start(1_000)
            .parent(pid)
            .tag("occ", 0.25f64)
            .tag("shape", "1x3x224x224")
            .finish(500_000);
        let kernel = SpanBuilder::new("volta_scudnn", StackLevel::Kernel, TraceId(2))
            .start(2_000)
            .tag(tag_keys::CORRELATION_ID, 42u64)
            .tag(tag_keys::ASYNC_EXECUTION, true)
            .finish(3_000);
        vec![model, layer, kernel]
    }

    #[test]
    fn materialize_round_trips_exactly() {
        let spans = sample();
        let store = SpanStore::from_spans(&spans);
        assert_eq!(store.len(), 3);
        for (i, s) in spans.iter().enumerate() {
            let back = store.materialize(i as u32);
            assert_eq!(&back, s, "span {i} must round-trip field-for-field");
            assert_eq!(
                serde_json::to_string(&back),
                serde_json::to_string(s),
                "span {i} must round-trip byte-for-byte"
            );
        }
    }

    #[test]
    fn interning_dedups_names_and_keys() {
        let mut store = SpanStore::new();
        for i in 0..100u64 {
            let s = SpanBuilder::new("volta_scudnn", StackLevel::Kernel, TraceId(1))
                .start(i)
                .tag("occ", 0.5f64)
                .finish(i + 1);
            store.push(&s);
        }
        // 3 pre-interned async keys + 1 name + 1 tag key.
        assert_eq!(store.names().len(), 5);
    }

    #[test]
    fn run_bucketing_matches_trace_from_spans() {
        let mut spans = sample();
        // Interleave a second run to exercise the non-last-bucket path.
        let extra = SpanBuilder::new("late", StackLevel::Kernel, TraceId(1))
            .start(10)
            .finish(20);
        spans.push(extra);
        let store = SpanStore::from_spans(&spans);
        let trace = store.to_trace();
        let direct = Trace::from_spans(spans.clone());
        assert_eq!(trace.trace_ids(), direct.trace_ids());
        for tid in trace.trace_ids() {
            assert_eq!(trace.run_indices(tid), direct.run_indices(tid));
        }
        assert_eq!(trace.spans().len(), direct.spans().len());
        for (a, b) in trace.spans().iter().zip(direct.spans()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn async_info_matches_span_semantics() {
        let spans = sample();
        let store = SpanStore::from_spans(&spans);
        let info = store.async_info(2);
        assert_eq!(info.flags & HAS_CID, HAS_CID);
        assert_eq!(info.cid, 42);
        assert_eq!(info.flags & IS_EXEC, IS_EXEC);
        assert_eq!(info.flags & IS_LAUNCH, 0);
        assert_eq!(store.async_info(0).flags & HAS_CID, 0);
    }

    #[test]
    fn async_info_first_tag_wins_like_span_tag() {
        // A string-typed first correlation_id tag hides a later integer one
        // (Span::tag returns the first match); the store must agree.
        let s = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(0)
            .tag(tag_keys::CORRELATION_ID, "not-a-number")
            .tag(tag_keys::CORRELATION_ID, 7u64)
            .tag(tag_keys::ASYNC_LAUNCH, false)
            .tag(tag_keys::ASYNC_LAUNCH, true)
            .finish(1);
        assert_eq!(s.correlation_id(), None);
        assert!(!s.is_async_launch());
        let store = SpanStore::from_spans(std::slice::from_ref(&s));
        let info = store.async_info(0);
        assert_eq!(info.flags & HAS_CID, 0, "string cid must not count");
        assert_eq!(info.flags & IS_LAUNCH, 0, "first launch tag is false");
        // Negative I64 cids are rejected, non-negative accepted — as_u64.
        let neg = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(0)
            .tag(tag_keys::CORRELATION_ID, TagValue::I64(-1))
            .finish(1);
        let pos = SpanBuilder::new("k", StackLevel::Kernel, TraceId(1))
            .start(0)
            .tag(tag_keys::CORRELATION_ID, TagValue::I64(9))
            .finish(1);
        let store = SpanStore::from_spans(&[neg, pos]);
        assert_eq!(store.async_info(0).flags & HAS_CID, 0);
        assert_eq!(store.async_info(1).cid, 9);
    }

    #[test]
    fn views_borrow_without_allocating() {
        let spans = sample();
        let store = SpanStore::from_spans(&spans);
        let v = store.view(1);
        assert_eq!(v.name(), "conv2d/Conv2D");
        assert_eq!(v.level(), StackLevel::Layer);
        assert_eq!(v.tag_count(), 2);
        let tags: Vec<(&str, TagRef<'_>)> = v.tags().collect();
        assert_eq!(tags[1], ("shape", TagRef::Str("1x3x224x224")));
        let logs: Vec<(u64, &str)> = store.view(0).logs().collect();
        assert_eq!(logs, vec![(5, "warmup done")]);
        assert_eq!(store.iter().count(), 3);
    }

    #[test]
    fn clear_retains_names() {
        let mut store = SpanStore::from_spans(&sample());
        let names_before = store.names().len();
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.names().len(), names_before);
        assert!(store.trace_ids().is_empty());
        // The store stays usable after clearing.
        store.push(&sample()[0]);
        assert_eq!(store.len(), 1);
    }
}
