//! Span hierarchy: the "holistic and hierarchical view of model execution"
//! (§I) materialized as a tree for step-through navigation.

use crate::correlate::CorrelatedTrace;
use crate::fxhash::FxHashMap;
use crate::span::{Span, SpanId};

/// A parent/child tree over the spans of a correlated trace.
///
/// The tree is an index-based *view*: it borrows the trace's span table —
/// no span is cloned — and reuses its root set, but derives its own child
/// adjacency because the presentation needs differ from the trace's
/// built-once map (present-parents only, children in chronological rather
/// than appearance order).
#[derive(Debug, Clone)]
pub struct SpanTree<'a> {
    trace: &'a CorrelatedTrace,
    /// Children per parent, chronological (by start timestamp).
    children: FxHashMap<SpanId, Vec<usize>>,
    /// Root indices, chronological.
    roots: Vec<usize>,
}

impl<'a> SpanTree<'a> {
    /// Builds the tree view over a correlated trace.
    pub fn build(trace: &'a CorrelatedTrace) -> Self {
        let spans = trace.spans();
        let mut children: FxHashMap<SpanId, Vec<usize>> = FxHashMap::default();
        for (i, c) in spans.iter().enumerate() {
            if let Some(p) = c.parent {
                if trace.position(p).is_some() {
                    children.entry(p).or_default().push(i);
                }
            }
        }
        // Children in chronological order, the natural step-through order.
        for v in children.values_mut() {
            v.sort_by_key(|&i| spans[i].span.start_ns);
        }
        let mut roots = trace.root_indices().to_vec();
        roots.sort_by_key(|&i| spans[i].span.start_ns);
        Self {
            trace,
            children,
            roots,
        }
    }

    fn span(&self, idx: usize) -> &'a Span {
        &self.trace.spans()[idx].span
    }

    /// The root spans (no parent), chronological.
    pub fn roots(&self) -> Vec<&'a Span> {
        self.roots.iter().map(|&i| self.span(i)).collect()
    }

    /// Children of `id`, chronological.
    pub fn children(&self, id: SpanId) -> Vec<&'a Span> {
        self.children
            .get(&id)
            .map(|v| v.iter().map(|&i| self.span(i)).collect())
            .unwrap_or_default()
    }

    /// Looks up a span by id.
    pub fn get(&self, id: SpanId) -> Option<&'a Span> {
        self.trace.find(id).map(|c| &c.span)
    }

    /// All descendants of `id` (pre-order).
    pub fn descendants(&self, id: SpanId) -> Vec<&'a Span> {
        let mut out = Vec::new();
        let mut stack: Vec<SpanId> = self.children(id).iter().map(|s| s.id).collect();
        stack.reverse();
        while let Some(next) = stack.pop() {
            if let Some(s) = self.get(next) {
                out.push(s);
                let mut kids: Vec<SpanId> = self.children(next).iter().map(|k| k.id).collect();
                kids.reverse();
                stack.extend(kids);
            }
        }
        out
    }

    /// Depth of the subtree rooted at `id` (1 = leaf).
    pub fn depth(&self, id: SpanId) -> usize {
        1 + self
            .children(id)
            .iter()
            .map(|c| self.depth(c.id))
            .max()
            .unwrap_or(0)
    }

    /// Renders an indented textual view of the hierarchy — the "smooth
    /// hierarchical step-through" presentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            self.render_node(*root, 0, &mut out);
        }
        out
    }

    fn render_node(&self, idx: usize, depth: usize, out: &mut String) {
        let s = self.span(idx);
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{}{} [{}] {:.3} ms",
            "  ".repeat(depth),
            s.name,
            s.level,
            s.duration_ms()
        );
        if let Some(kids) = self.children.get(&s.id) {
            for &child in kids {
                self.render_node(child, depth + 1, out);
            }
        }
    }

    /// Total number of spans.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::reconstruct_parents;
    use crate::server::Trace;
    use crate::span::{SpanBuilder, StackLevel, TraceId};

    fn make_trace() -> CorrelatedTrace {
        let model = SpanBuilder::new("predict", StackLevel::Model, TraceId(1))
            .start(0)
            .finish(1000);
        let mid = model.id;
        let layer1 = SpanBuilder::new("conv", StackLevel::Layer, TraceId(1))
            .start(10)
            .parent(mid)
            .finish(400);
        let layer2 = SpanBuilder::new("relu", StackLevel::Layer, TraceId(1))
            .start(500)
            .parent(mid)
            .finish(700);
        let k1 = SpanBuilder::new("k1", StackLevel::Kernel, TraceId(1))
            .start(20)
            .finish(100);
        let k2 = SpanBuilder::new("k2", StackLevel::Kernel, TraceId(1))
            .start(120)
            .finish(300);
        reconstruct_parents(&Trace::from_spans(vec![model, layer1, layer2, k1, k2]))
    }

    #[test]
    fn builds_three_level_tree() {
        let trace = make_trace();
        let tree = SpanTree::build(&trace);
        assert_eq!(tree.len(), 5);
        let roots = tree.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "predict");
        let layers = tree.children(roots[0].id);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].name, "conv");
        let kernels = tree.children(layers[0].id);
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].name, "k1");
        assert_eq!(tree.depth(roots[0].id), 3);
    }

    #[test]
    fn descendants_are_preorder() {
        let trace = make_trace();
        let tree = SpanTree::build(&trace);
        let root = tree.roots()[0].id;
        let names: Vec<&str> = tree
            .descendants(root)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["conv", "k1", "k2", "relu"]);
    }

    #[test]
    fn render_is_indented() {
        let trace = make_trace();
        let tree = SpanTree::build(&trace);
        let text = tree.render();
        assert!(text.contains("predict [model]"));
        assert!(text.contains("  conv [layer]"));
        assert!(text.contains("    k1 [kernel]"));
    }

    #[test]
    fn children_are_chronological() {
        let trace = make_trace();
        let tree = SpanTree::build(&trace);
        let root = tree.roots()[0].id;
        let starts: Vec<u64> = tree.children(root).iter().map(|s| s.start_ns).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
