//! Property tests for the tracing substrate: interval-tree queries vs a
//! naive oracle, parent-reconstruction invariants, and statistics bounds.

use proptest::prelude::*;
use std::collections::HashMap;
use xsp_trace::correlate::CorrelatedSpan;
use xsp_trace::interval::{Interval, IntervalTree};
use xsp_trace::span::{tag_keys, Span, SpanId};
use xsp_trace::stats::{percentile, trimmed_mean, Summary};
use xsp_trace::{
    correlate_async_spans, reconstruct_parents, AmbiguityReport, CorrelationEngine, SpanBuilder,
    SpanStore, StackLevel, StoreCorrelationCache, Trace, TraceId,
};

fn arb_intervals(max_n: usize) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0u64..1000, 0u64..100), 0..max_n).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(k, (start, len))| Interval::new(start, start + len, k))
            .collect()
    })
}

proptest! {
    #[test]
    fn tree_containing_matches_naive(intervals in arb_intervals(120), lo in 0u64..1100, len in 0u64..120) {
        let hi = lo + len;
        let tree = IntervalTree::build(intervals.clone());
        let mut got: Vec<usize> = tree.containing(lo, hi).map(|iv| iv.key).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = intervals
            .iter()
            .filter(|iv| iv.contains_range(lo, hi))
            .map(|iv| iv.key)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_overlapping_matches_naive(intervals in arb_intervals(120), lo in 0u64..1100, len in 0u64..120) {
        let hi = lo + len;
        let tree = IntervalTree::build(intervals.clone());
        let mut got: Vec<usize> = tree.overlapping(lo, hi).map(|iv| iv.key).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = intervals
            .iter()
            .filter(|iv| iv.overlaps(lo, hi))
            .map(|iv| iv.key)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_contained_in_matches_naive(intervals in arb_intervals(120), lo in 0u64..1100, len in 0u64..200) {
        let hi = lo + len;
        let tree = IntervalTree::build(intervals.clone());
        let mut got: Vec<usize> = tree.contained_in(lo, hi).map(|iv| iv.key).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = intervals
            .iter()
            .filter(|iv| lo <= iv.start && iv.end <= hi)
            .map(|iv| iv.key)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_depth_is_logarithmic(intervals in arb_intervals(256)) {
        let n = intervals.len();
        let tree = IntervalTree::build(intervals);
        if n > 0 {
            let bound = (n as f64).log2().ceil() as usize + 1;
            prop_assert!(tree.depth() <= bound, "depth {} for {} nodes", tree.depth(), n);
        }
    }

    /// Nested (non-overlapping-sibling) layer structures always reconstruct
    /// cleanly: every kernel's parent is the layer that contains it.
    #[test]
    fn reconstruction_recovers_nested_structure(
        layer_lens in prop::collection::vec(10u64..60, 1..12),
        kernel_fracs in prop::collection::vec((0.1f64..0.9, 0.02f64..0.08), 1..30),
    ) {
        let trace_id = TraceId(1);
        let mut spans = Vec::new();
        // model covers everything
        let total: u64 = layer_lens.iter().sum::<u64>() + 10;
        let model = SpanBuilder::new("model", StackLevel::Model, trace_id)
            .start(0)
            .finish(total + 10);
        spans.push(model);
        // consecutive layers
        let mut cursor = 5u64;
        let mut layer_bounds = Vec::new();
        for (i, len) in layer_lens.iter().enumerate() {
            let s = SpanBuilder::new(format!("layer{i}"), StackLevel::Layer, trace_id)
                .start(cursor)
                .tag(tag_keys::LAYER_INDEX, i as u64)
                .finish(cursor + len);
            layer_bounds.push((s.id, cursor, cursor + len));
            spans.push(s);
            cursor += len;
        }
        // kernels at fractional positions within random layers
        for (j, (frac, width)) in kernel_fracs.iter().enumerate() {
            let (lid, lo, hi) = layer_bounds[j % layer_bounds.len()];
            let span_len = hi - lo;
            let start = lo + (span_len as f64 * frac) as u64;
            let dur = ((span_len as f64) * width).max(1.0) as u64;
            let end = (start + dur).min(hi);
            if end <= start { continue; }
            let k = SpanBuilder::new(format!("kernel{j}"), StackLevel::Kernel, trace_id)
                .start(start)
                .finish(end);
            spans.push(k);
            let _ = lid;
        }
        let correlated = reconstruct_parents(&Trace::from_spans(spans));
        prop_assert!(correlated.ambiguities.is_clean(), "{:?}", correlated.ambiguities);
        for s in correlated.spans() {
            if s.span.level == StackLevel::Kernel {
                let parent = s.parent.expect("kernel parented");
                let p = correlated.find(parent).unwrap();
                prop_assert_eq!(p.span.level, StackLevel::Layer);
                prop_assert!(p.span.contains(&s.span));
            }
        }
    }

    #[test]
    fn trimmed_mean_within_min_max(samples in prop::collection::vec(-1e6f64..1e6, 1..50), trim in 0.0f64..0.49) {
        let tm = trimmed_mean(&samples, trim).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(tm >= min - 1e-9 && tm <= max + 1e-9, "{tm} outside [{min}, {max}]");
    }

    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let p25 = percentile(&samples, 25.0).unwrap();
        let p50 = percentile(&samples, 50.0).unwrap();
        let p75 = percentile(&samples, 75.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
    }

    #[test]
    fn summary_invariants(samples in prop::collection::vec(0f64..1e9, 1..40)) {
        let s = Summary::of(&samples, 0.1).unwrap();
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }

    /// Streaming export round trip: write → read → write is byte-identical
    /// for arbitrary spans (names with JSON-hostile characters, every tag
    /// type, parent chains, logs), in both the JSON-lines and the array
    /// framing.
    #[test]
    fn span_json_lines_roundtrip_is_byte_identical(specs in arb_span_specs()) {
        use xsp_trace::export::{read_span_json_lines, SpanJsonLinesWriter, SpanJsonWriter};
        let spans = build_spans(specs);
        let trace = Trace::from_spans(spans);

        let mut writer = SpanJsonLinesWriter::new(Vec::new());
        writer.write_trace(&trace).unwrap();
        let first = writer.finish().unwrap();

        let back = read_span_json_lines(&first[..]).unwrap();
        prop_assert_eq!(back.len(), trace.len());

        let mut writer = SpanJsonLinesWriter::new(Vec::new());
        writer.write_trace(&back).unwrap();
        let second = writer.finish().unwrap();
        prop_assert_eq!(&first, &second, "write → read → write must be a fixpoint");

        // the array framing must agree with the materializing exporter and
        // survive its own round trip
        let mut writer = SpanJsonWriter::new(Vec::new()).unwrap();
        writer.write_trace(&trace).unwrap();
        let array = String::from_utf8(writer.finish().unwrap()).unwrap();
        prop_assert_eq!(&array, &xsp_trace::export::to_span_json(&trace));
        let reparsed = xsp_trace::export::from_span_json(&array).unwrap();
        prop_assert_eq!(xsp_trace::export::to_span_json(&reparsed), array);
    }
}

proptest! {
    /// The correlation-engine refactor contract: for arbitrary span forests
    /// — overlapping layers (ambiguity), spans outside every candidate
    /// (orphans), async launch/execution pairs, unpaired halves, library
    /// spans, multiple runs — [`CorrelationEngine`] must produce exactly
    /// the spans, parents, launch intervals and ambiguity report of the
    /// naive oracle that rebuilds one interval tree per level per run.
    #[test]
    fn engine_matches_naive_per_level_rebuild_oracle(spans in arb_correlation_forest()) {
        let trace = Trace::from_spans(spans);
        let (oracle_spans, oracle_ambiguities) = oracle_reconstruct(&trace);
        let got = CorrelationEngine::new().correlate(trace);

        prop_assert_eq!(got.len(), oracle_spans.len(), "span count diverged");
        for (g, o) in got.spans().iter().zip(&oracle_spans) {
            prop_assert_eq!(
                serde_json::to_string(&g.span).unwrap(),
                serde_json::to_string(&o.span).unwrap(),
                "span payload diverged"
            );
            prop_assert_eq!(g.parent, o.parent, "parent diverged for {}", g.span.name);
            prop_assert_eq!(g.launch_interval, o.launch_interval);
        }
        prop_assert_eq!(&got.ambiguities.ambiguous, &oracle_ambiguities.ambiguous);
        prop_assert_eq!(&got.ambiguities.orphans, &oracle_ambiguities.orphans);
    }

    /// The incremental-correlation contract: feeding the same span stream
    /// through `push_batch` at arbitrary batch boundaries, then finalizing,
    /// must reproduce the batch engine exactly — same spans, parents,
    /// launch intervals and ambiguity report — and so must the cached
    /// store path (`StoreCorrelationCache::refresh` + `materialize`) when
    /// the store grows by those same batches.
    #[test]
    fn incremental_engine_matches_batch_for_random_batch_splits(
        spans in arb_correlation_forest(),
        raw_cuts in prop::collection::vec(0usize..400, 0..6),
    ) {
        let batch = CorrelationEngine::new().correlate(Trace::from_spans(spans.clone()));

        // Random split points over the publication stream (empty batches
        // included when cuts collide).
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (spans.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.push(spans.len());

        let mut engine = CorrelationEngine::new();
        let mut store = SpanStore::new();
        let mut cache = StoreCorrelationCache::new();
        let mut cache_engine = CorrelationEngine::new();
        let mut prev = 0usize;
        for cut in cuts {
            engine.push_batch(spans[prev..cut].iter().cloned());
            for span in &spans[prev..cut] {
                store.push(span);
            }
            // Refresh after every batch: intermediate refreshes must not
            // disturb the final answer (prefix validation keeps finalized
            // runs cached).
            cache.refresh(&mut cache_engine, &store);
            prev = cut;
        }
        let incremental = engine.finalize_all();
        let cached = cache.materialize(&store);

        for (label, got) in [("push_batch", &incremental), ("store cache", &cached)] {
            prop_assert_eq!(got.len(), batch.len(), "{}: span count diverged", label);
            for (g, o) in got.spans().iter().zip(batch.spans()) {
                prop_assert_eq!(
                    serde_json::to_string(&g.span).unwrap(),
                    serde_json::to_string(&o.span).unwrap(),
                    "{}: span payload diverged", label
                );
                prop_assert_eq!(g.parent, o.parent, "{}: parent diverged for {}", label, g.span.name);
                prop_assert_eq!(g.launch_interval, o.launch_interval, "{}: launch interval diverged", label);
            }
            prop_assert_eq!(&got.ambiguities.ambiguous, &batch.ambiguities.ambiguous, "{}: ambiguous diverged", label);
            prop_assert_eq!(&got.ambiguities.orphans, &batch.ambiguities.orphans, "{}: orphans diverged", label);
        }
    }
}

/// One generated kernel-level participant:
/// `(kind, launch_start, launch_len, exec_start, exec_len)`.
type KernelSpec = (u8, u64, u64, u64, u64);

/// Random span forests over 1–2 runs: a model root, overlapping layers,
/// library spans, and kernels of every async flavor.
fn arb_correlation_forest() -> impl Strategy<Value = Vec<Span>> {
    (
        prop::collection::vec((0u64..9_000, 50u64..2_500, 0u8..4), 0..8),
        prop::collection::vec(
            (0u8..6, 0u64..10_400, 1u64..400, 0u64..11_000, 1u64..600),
            0..25,
        ),
        1usize..3,
    )
        .prop_map(|(layers, kernels, nruns)| {
            let mut spans = Vec::new();
            for run in 0..nruns as u64 {
                build_run_spans(TraceId(run + 1), &layers, &kernels, &mut spans);
            }
            spans
        })
}

fn build_run_spans(
    trace_id: TraceId,
    layers: &[(u64, u64, u8)],
    kernels: &[KernelSpec],
    out: &mut Vec<Span>,
) {
    // The model root covers [0, 10_000]; kernels may start beyond it so the
    // orphan path is exercised.
    let model = SpanBuilder::new("model", StackLevel::Model, trace_id)
        .start(0)
        .finish(10_000);
    let model_id = model.id;
    out.push(model);
    for (i, &(start, len, flavor)) in layers.iter().enumerate() {
        let mut b = SpanBuilder::new(format!("layer{i}"), StackLevel::Layer, trace_id).start(start);
        // Most layers carry their explicit parent (the framework knows it);
        // some do not, so layer→model reconstruction is exercised too.
        if flavor != 0 {
            b = b.parent(model_id);
        }
        out.push(b.finish(start + len));
        if flavor == 3 {
            // a library-level span nested in this layer
            let lib = SpanBuilder::new(format!("cudnnApi{i}"), StackLevel::Library, trace_id)
                .start(start + len / 4)
                .finish(start + len / 2);
            out.push(lib);
        }
    }
    for (j, &(kind, lstart, llen, xstart, xlen)) in kernels.iter().enumerate() {
        let cid = j as u64 + 1;
        match kind {
            // plain (synchronous) kernel span
            0 => out.push(
                SpanBuilder::new(format!("plain{j}"), StackLevel::Kernel, trace_id)
                    .start(xstart)
                    .finish(xstart + xlen),
            ),
            // async pair: launch + execution linked by correlation id
            1 => {
                out.push(
                    SpanBuilder::new(format!("launch{j}"), StackLevel::Kernel, trace_id)
                        .start(lstart)
                        .tag(tag_keys::CORRELATION_ID, cid)
                        .tag(tag_keys::ASYNC_LAUNCH, true)
                        .finish(lstart + llen),
                );
                out.push(
                    SpanBuilder::new(format!("exec{j}"), StackLevel::Kernel, trace_id)
                        .start(xstart)
                        .tag(tag_keys::CORRELATION_ID, cid)
                        .tag(tag_keys::ASYNC_EXECUTION, true)
                        .tag(tag_keys::FLOP_COUNT_SP, 1000u64)
                        .finish(xstart + xlen),
                );
            }
            // unpaired launch (kernel never ran)
            2 => out.push(
                SpanBuilder::new(format!("lost_launch{j}"), StackLevel::Kernel, trace_id)
                    .start(lstart)
                    .tag(tag_keys::CORRELATION_ID, cid)
                    .tag(tag_keys::ASYNC_LAUNCH, true)
                    .finish(lstart + llen),
            ),
            // unpaired execution (callback dropped)
            3 => out.push(
                SpanBuilder::new(format!("lost_exec{j}"), StackLevel::Kernel, trace_id)
                    .start(xstart)
                    .tag(tag_keys::CORRELATION_ID, cid)
                    .tag(tag_keys::ASYNC_EXECUTION, true)
                    .finish(xstart + xlen),
            ),
            // execution that arrives before its launch in publication order
            4 => {
                out.push(
                    SpanBuilder::new(format!("exec_first{j}"), StackLevel::Kernel, trace_id)
                        .start(xstart)
                        .tag(tag_keys::CORRELATION_ID, cid)
                        .tag(tag_keys::ASYNC_EXECUTION, true)
                        .finish(xstart + xlen),
                );
                out.push(
                    SpanBuilder::new(format!("late_launch{j}"), StackLevel::Kernel, trace_id)
                        .start(lstart)
                        .tag(tag_keys::CORRELATION_ID, cid)
                        .tag(tag_keys::ASYNC_LAUNCH, true)
                        .finish(lstart + llen),
                );
            }
            // already-merged capture span: both flags, takes part in no
            // pairing (idempotent re-correlation)
            _ => out.push(
                SpanBuilder::new(format!("premerged{j}"), StackLevel::Kernel, trace_id)
                    .start(xstart)
                    .tag(tag_keys::CORRELATION_ID, cid)
                    .tag(tag_keys::ASYNC_LAUNCH, true)
                    .tag(tag_keys::ASYNC_EXECUTION, true)
                    .finish(xstart + xlen),
            ),
        }
    }
}

/// The pre-engine implementation, kept verbatim as the oracle: one interval
/// tree per level, rebuilt per run, spans cloned per run.
fn oracle_reconstruct(trace: &Trace) -> (Vec<CorrelatedSpan>, AmbiguityReport) {
    let mut spans = Vec::new();
    let mut ambiguities = AmbiguityReport::default();
    for tid in trace.trace_ids() {
        let run: Vec<Span> = trace
            .spans()
            .iter()
            .filter(|s| s.trace_id == tid)
            .cloned()
            .collect();
        let (s, a) = oracle_single_run(&run);
        spans.extend(s);
        ambiguities.merge(a);
    }
    (spans, ambiguities)
}

fn oracle_single_run(spans: &[Span]) -> (Vec<CorrelatedSpan>, AmbiguityReport) {
    let mut correlated = correlate_async_spans(spans);
    let levels: Vec<StackLevel> = StackLevel::ALL
        .iter()
        .copied()
        .filter(|l| correlated.iter().any(|s| s.span.level == *l))
        .collect();
    let mut trees: HashMap<StackLevel, IntervalTree> = HashMap::new();
    for &level in &levels {
        let intervals: Vec<Interval> = correlated
            .iter()
            .enumerate()
            .filter(|(_, s)| s.span.level == level)
            .map(|(i, s)| Interval::new(s.span.start_ns, s.span.end_ns, i))
            .collect();
        trees.insert(level, IntervalTree::build(intervals));
    }
    let mut ambiguities = AmbiguityReport::default();
    for i in 0..correlated.len() {
        if correlated[i].parent.is_some() {
            continue;
        }
        let child_level = correlated[i].span.level;
        let Some(pos) = levels.iter().position(|l| *l == child_level) else {
            continue;
        };
        if pos == 0 {
            continue;
        }
        let mut probes: Vec<(u64, u64)> = vec![correlated[i].anchor_interval()];
        let own = (correlated[i].span.start_ns, correlated[i].span.end_ns);
        if probes[0] != own {
            probes.push(own);
        }
        let mut candidates: Vec<usize> = Vec::new();
        'search: for ancestor in (0..pos).rev() {
            let tree = &trees[&levels[ancestor]];
            for &(lo, hi) in &probes {
                candidates = tree.containing(lo, hi).map(|iv| iv.key).collect();
                candidates.retain(|&c| c != i);
                if !candidates.is_empty() {
                    break 'search;
                }
            }
        }
        match candidates.len() {
            0 => ambiguities.orphans.push(correlated[i].span.id),
            1 => {
                let pid = correlated[candidates[0]].span.id;
                correlated[i].parent = Some(pid);
                correlated[i].span.parent = Some(pid);
            }
            _ => {
                let best = *candidates
                    .iter()
                    .min_by_key(|&&c| correlated[c].span.end_ns - correlated[c].span.start_ns)
                    .expect("nonempty");
                let all: Vec<SpanId> = candidates.iter().map(|&c| correlated[c].span.id).collect();
                ambiguities.ambiguous.push((correlated[i].span.id, all));
                let pid = correlated[best].span.id;
                correlated[i].parent = Some(pid);
                correlated[i].span.parent = Some(pid);
            }
        }
    }
    (correlated, ambiguities)
}

/// Raw generator output for one span: `(name index, level index, start,
/// len, parent back-reference, tag selector bits, log count)`.
type SpanSpec = (usize, usize, u64, u64, usize, u8, usize);

fn arb_span_specs() -> impl Strategy<Value = Vec<SpanSpec>> {
    prop::collection::vec(
        (
            0usize..6,
            0usize..5,
            0u64..1_000_000_000,
            0u64..1_000_000,
            0usize..4,
            0u8..32,
            0usize..3,
        ),
        0..30,
    )
}

fn build_spans(specs: Vec<SpanSpec>) -> Vec<xsp_trace::Span> {
    // JSON-hostile names: separators, quotes, escapes, control chars,
    // non-ASCII — the reader must get back exactly what the writer saw.
    let names = [
        "model_prediction",
        "conv2d 1/Conv2D;fused",
        "say \"hi\"",
        "tab\tand\nnewline",
        "uni⟨code⟩ kernel λ",
        "back\\slash",
    ];
    let mut spans: Vec<xsp_trace::Span> = Vec::with_capacity(specs.len());
    for (name_ix, level_ix, start, len, parent_back, tag_bits, logs) in specs {
        let level = StackLevel::ALL[level_ix % StackLevel::ALL.len()];
        let mut builder =
            SpanBuilder::new(names[name_ix % names.len()], level, TraceId(1)).start(start);
        if parent_back > 0 && !spans.is_empty() {
            builder = builder.parent(spans[(parent_back - 1) % spans.len()].id);
        }
        if tag_bits & 1 != 0 {
            builder = builder.tag("note", "string \"tag\"\n");
        }
        if tag_bits & 2 != 0 {
            builder = builder.tag("signed", -42i64);
        }
        if tag_bits & 4 != 0 {
            builder = builder.tag(tag_keys::FLOP_COUNT_SP, u64::MAX);
        }
        if tag_bits & 8 != 0 {
            builder = builder.tag("occ", 0.1f64 + start as f64 * 1e-3);
        }
        if tag_bits & 16 != 0 {
            builder = builder.tag("flag", (tag_bits & 1) == 0);
        }
        for l in 0..logs {
            builder = builder.log(start + l as u64, format!("event {l}"));
        }
        spans.push(builder.finish(start + len));
    }
    spans
}
