//! Property tests for the tracing substrate: interval-tree queries vs a
//! naive oracle, parent-reconstruction invariants, and statistics bounds.

use proptest::prelude::*;
use xsp_trace::interval::{Interval, IntervalTree};
use xsp_trace::span::tag_keys;
use xsp_trace::stats::{percentile, trimmed_mean, Summary};
use xsp_trace::{reconstruct_parents, SpanBuilder, StackLevel, Trace, TraceId};

fn arb_intervals(max_n: usize) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0u64..1000, 0u64..100), 0..max_n).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(k, (start, len))| Interval::new(start, start + len, k))
            .collect()
    })
}

proptest! {
    #[test]
    fn tree_containing_matches_naive(intervals in arb_intervals(120), lo in 0u64..1100, len in 0u64..120) {
        let hi = lo + len;
        let tree = IntervalTree::build(intervals.clone());
        let mut got: Vec<usize> = tree.containing(lo, hi).map(|iv| iv.key).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = intervals
            .iter()
            .filter(|iv| iv.contains_range(lo, hi))
            .map(|iv| iv.key)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_overlapping_matches_naive(intervals in arb_intervals(120), lo in 0u64..1100, len in 0u64..120) {
        let hi = lo + len;
        let tree = IntervalTree::build(intervals.clone());
        let mut got: Vec<usize> = tree.overlapping(lo, hi).map(|iv| iv.key).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = intervals
            .iter()
            .filter(|iv| iv.overlaps(lo, hi))
            .map(|iv| iv.key)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_contained_in_matches_naive(intervals in arb_intervals(120), lo in 0u64..1100, len in 0u64..200) {
        let hi = lo + len;
        let tree = IntervalTree::build(intervals.clone());
        let mut got: Vec<usize> = tree.contained_in(lo, hi).map(|iv| iv.key).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = intervals
            .iter()
            .filter(|iv| lo <= iv.start && iv.end <= hi)
            .map(|iv| iv.key)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_depth_is_logarithmic(intervals in arb_intervals(256)) {
        let n = intervals.len();
        let tree = IntervalTree::build(intervals);
        if n > 0 {
            let bound = (n as f64).log2().ceil() as usize + 1;
            prop_assert!(tree.depth() <= bound, "depth {} for {} nodes", tree.depth(), n);
        }
    }

    /// Nested (non-overlapping-sibling) layer structures always reconstruct
    /// cleanly: every kernel's parent is the layer that contains it.
    #[test]
    fn reconstruction_recovers_nested_structure(
        layer_lens in prop::collection::vec(10u64..60, 1..12),
        kernel_fracs in prop::collection::vec((0.1f64..0.9, 0.02f64..0.08), 1..30),
    ) {
        let trace_id = TraceId(1);
        let mut spans = Vec::new();
        // model covers everything
        let total: u64 = layer_lens.iter().sum::<u64>() + 10;
        let model = SpanBuilder::new("model", StackLevel::Model, trace_id)
            .start(0)
            .finish(total + 10);
        spans.push(model);
        // consecutive layers
        let mut cursor = 5u64;
        let mut layer_bounds = Vec::new();
        for (i, len) in layer_lens.iter().enumerate() {
            let s = SpanBuilder::new(format!("layer{i}"), StackLevel::Layer, trace_id)
                .start(cursor)
                .tag(tag_keys::LAYER_INDEX, i as u64)
                .finish(cursor + len);
            layer_bounds.push((s.id, cursor, cursor + len));
            spans.push(s);
            cursor += len;
        }
        // kernels at fractional positions within random layers
        for (j, (frac, width)) in kernel_fracs.iter().enumerate() {
            let (lid, lo, hi) = layer_bounds[j % layer_bounds.len()];
            let span_len = hi - lo;
            let start = lo + (span_len as f64 * frac) as u64;
            let dur = ((span_len as f64) * width).max(1.0) as u64;
            let end = (start + dur).min(hi);
            if end <= start { continue; }
            let k = SpanBuilder::new(format!("kernel{j}"), StackLevel::Kernel, trace_id)
                .start(start)
                .finish(end);
            spans.push(k);
            let _ = lid;
        }
        let correlated = reconstruct_parents(&Trace::from_spans(spans));
        prop_assert!(correlated.ambiguities.is_clean(), "{:?}", correlated.ambiguities);
        for s in &correlated.spans {
            if s.span.level == StackLevel::Kernel {
                let parent = s.parent.expect("kernel parented");
                let p = correlated.find(parent).unwrap();
                prop_assert_eq!(p.span.level, StackLevel::Layer);
                prop_assert!(p.span.contains(&s.span));
            }
        }
    }

    #[test]
    fn trimmed_mean_within_min_max(samples in prop::collection::vec(-1e6f64..1e6, 1..50), trim in 0.0f64..0.49) {
        let tm = trimmed_mean(&samples, trim).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(tm >= min - 1e-9 && tm <= max + 1e-9, "{tm} outside [{min}, {max}]");
    }

    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let p25 = percentile(&samples, 25.0).unwrap();
        let p50 = percentile(&samples, 50.0).unwrap();
        let p75 = percentile(&samples, 75.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
    }

    #[test]
    fn summary_invariants(samples in prop::collection::vec(0f64..1e9, 1..40)) {
        let s = Summary::of(&samples, 0.1).unwrap();
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }
}
