//! Fidelity of the analytic cost model: per-image convolution+dense flops
//! of the zoo graphs must land near the published numbers for each
//! architecture (2 × the commonly quoted MAC counts).

use xsp_framework::{LayerGraph, LayerOp};
use xsp_models::zoo;

fn model_flops_per_image(g: &LayerGraph) -> f64 {
    g.layers
        .iter()
        .filter_map(|l| match &l.op {
            LayerOp::Conv2D(p) => Some(p.direct_flops()),
            // depthwise: no cross-channel reduction — direct flops divided
            // by the input-channel factor
            LayerOp::DepthwiseConv2dNative(p) => Some(p.direct_flops() / p.in_c as u64),
            LayerOp::MatMul {
                in_features,
                out_features,
            } => Some(2 * *in_features as u64 * *out_features as u64),
            _ => None,
        })
        .sum::<u64>() as f64
}

fn assert_near(name: &str, published_gflop: f64, tolerance: f64) {
    let g = zoo::by_name(name).unwrap().graph(1);
    let got = model_flops_per_image(&g) / 1e9;
    let rel = (got - published_gflop).abs() / published_gflop;
    assert!(
        rel < tolerance,
        "{name}: {got:.2} Gflop vs published {published_gflop:.2} (rel err {rel:.2})"
    );
}

#[test]
fn resnet50_v15_is_8_gflop() {
    // 4.1 GMACs => 8.2 Gflop
    assert_near("MLPerf_ResNet50_v1.5", 8.2, 0.25);
}

#[test]
fn resnet101_and_152_scale_with_depth() {
    assert_near("ResNet_v1_101", 15.2, 0.30);
    assert_near("ResNet_v1_152", 22.6, 0.30);
}

#[test]
fn vgg16_is_31_gflop() {
    assert_near("VGG16", 31.0, 0.25);
}

#[test]
fn vgg19_is_39_gflop() {
    assert_near("VGG19", 39.0, 0.25);
}

#[test]
fn mobilenet_v1_full_is_1_1_gflop() {
    assert_near("MobileNet_v1_1.0_224", 1.14, 0.35);
}

#[test]
fn inception_v3_is_11_gflop() {
    assert_near("Inception_v3", 11.4, 0.45);
}

#[test]
fn densenet121_is_5_7_gflop() {
    assert_near("AI_Matrix_DenseNet121", 5.7, 0.40);
}

#[test]
fn alexnet_is_2_3_gflop_ungrouped() {
    // BVLC AlexNet uses grouped convs (conv2/4/5 at groups=2) for 0.7
    // GMACs; the TF-style ungrouped port we build doubles those three
    // layers, landing near 2.3 Gflop (plus ceil-shaped pooling).
    assert_near("BVLC_AlexNet_Caffe", 2.3, 0.30);
}

#[test]
fn googlenet_is_3_gflop() {
    assert_near("Inception_v1", 3.0, 0.45);
}

#[test]
fn mobilenet_grid_scales_quadratically_in_alpha_and_resolution() {
    let f = |name: &str| model_flops_per_image(&zoo::by_name(name).unwrap().graph(1));
    // resolution halving ~ 4x fewer flops (quadratic)
    let full = f("MobileNet_v1_1.0_224");
    let half_res = f("MobileNet_v1_1.0_128");
    let ratio = full / half_res;
    assert!(
        (2.5..=4.5).contains(&ratio),
        "224 vs 128 resolution ratio {ratio}"
    );
    // alpha 0.5 ~ 4x fewer flops in the depthwise trunk (quadratic in width)
    let half_alpha = f("MobileNet_v1_0.5_224");
    let ratio = full / half_alpha;
    assert!(
        (2.5..=5.0).contains(&ratio),
        "alpha 1.0 vs 0.5 ratio {ratio}"
    );
}

#[test]
fn detection_models_order_by_published_cost() {
    let f = |name: &str| model_flops_per_image(&zoo::by_name(name).unwrap().graph(1));
    // NAS (1200²) >> SSD ResNet34 (1200²) > Faster R-CNN R101 (512²)
    //   >> SSD MobileNet (300²)
    assert!(f("Faster_RCNN_NAS") > f("MLPerf_SSD_ResNet34_1200x1200"));
    assert!(f("MLPerf_SSD_ResNet34_1200x1200") > f("Faster_RCNN_ResNet101"));
    assert!(f("Faster_RCNN_ResNet101") > 30.0 * f("MLPerf_SSD_MobileNet_v1_300x300"));
}
