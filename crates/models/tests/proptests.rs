//! Property tests over the zoo: every builder must produce well-formed
//! graphs whose analytic cost scales linearly in batch size.

use proptest::prelude::*;
use xsp_framework::LayerOp;
use xsp_models::zoo;

fn conv_flops(g: &xsp_framework::LayerGraph) -> u64 {
    g.layers
        .iter()
        .filter_map(|l| match &l.op {
            LayerOp::Conv2D(p) | LayerOp::DepthwiseConv2dNative(p) => Some(p.direct_flops()),
            _ => None,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_model_builds_well_formed_graphs(
        id in 1u32..=55,
        batch in prop::sample::select(vec![1usize, 2, 3, 5, 8, 17]),
    ) {
        let m = zoo::by_id(id).unwrap();
        let g = m.graph(batch);
        prop_assert!(!g.is_empty(), "{}", m.name);
        prop_assert_eq!(g.batch(), batch);
        prop_assert_eq!(g.layers[0].op.type_name(), "Data");
        for l in &g.layers {
            prop_assert!(l.out_shape.elements() > 0, "{}: {}", m.name, l.name);
            prop_assert_eq!(l.out_shape.batch(), batch, "{}: {}", m.name, l.name);
            prop_assert!(!l.name.is_empty());
        }
        // layer count independent of batch
        let g2 = m.graph(batch * 2);
        prop_assert_eq!(g.len(), g2.len(), "{}", m.name);
    }

    #[test]
    fn conv_flops_linear_in_batch(id in 1u32..=55, batch in 1usize..8) {
        let m = zoo::by_id(id).unwrap();
        let f1 = conv_flops(&m.graph(batch));
        let f2 = conv_flops(&m.graph(batch * 2));
        prop_assert_eq!(f2, 2 * f1, "{}", m.name);
    }

    #[test]
    fn layer_names_unique_within_graph(id in 1u32..=55) {
        let m = zoo::by_id(id).unwrap();
        let g = m.graph(1);
        let mut names: Vec<&str> = g.layers.iter().map(|l| l.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        prop_assert_eq!(names.len(), total, "{} has duplicate layer names", m.name);
    }
}
