//! Parameter-count fidelity: the zoo's channel configurations must
//! reproduce the frozen-graph sizes of Table VIII (params × 4 bytes),
//! which pins down the architectures far more tightly than layer counts.

use xsp_models::zoo;

fn assert_size(name: &str, tolerance: f64) {
    let m = zoo::by_name(name).unwrap();
    let got = m.graph(1).weights_mb();
    let want = m.graph_size_mb;
    let rel = (got - want).abs() / want;
    assert!(
        rel < tolerance,
        "{name}: weights {got:.1} MB vs published graph {want:.1} MB (rel {rel:.2})"
    );
}

#[test]
fn vgg_sizes() {
    // VGG is ~all FC+conv weights: the tightest check (528/548 MB).
    assert_size("VGG16", 0.10);
    assert_size("VGG19", 0.10);
}

#[test]
fn resnet_sizes() {
    assert_size("MLPerf_ResNet50_v1.5", 0.15);
    assert_size("ResNet_v1_101", 0.15);
    assert_size("ResNet_v1_152", 0.15);
}

#[test]
fn mobilenet_sizes() {
    assert_size("MobileNet_v1_1.0_224", 0.15);
    assert_size("MobileNet_v1_0.5_224", 0.30);
    assert_size("MobileNet_v1_0.25_224", 0.45); // tiny absolute sizes
}

#[test]
fn alexnet_size() {
    // 61M params ≈ 233 MB. Our ungrouped port carries 2x conv2/4/5 weights
    // and the ceil-shaped pooling grows fc6 to 7x7x256 inputs (vs Caffe's
    // 6x6), landing ~30% over — the ordering checks below still pin it.
    assert_size("BVLC_AlexNet_Caffe", 0.35);
}

#[test]
fn inception_v3_size() {
    assert_size("Inception_v3", 0.35);
}

#[test]
fn densenet_size() {
    assert_size("AI_Matrix_DenseNet121", 0.35);
}

#[test]
fn size_ladder_is_ordered() {
    // graph sizes must order the same way the published table does
    let mb = |n: &str| zoo::by_name(n).unwrap().graph(1).weights_mb();
    assert!(mb("VGG19") > mb("VGG16"));
    assert!(mb("VGG16") > mb("ResNet_v1_152"));
    assert!(mb("ResNet_v1_152") > mb("ResNet_v1_50"));
    assert!(mb("ResNet_v1_50") > mb("MobileNet_v1_1.0_224"));
    assert!(mb("MobileNet_v1_1.0_224") > mb("MobileNet_v1_0.25_224"));
}
