//! DenseNet-121 (AI-Matrix): dense blocks with channel concatenation —
//! memory-bound at every batch size in the paper's Table IX (model 14).

use crate::builder::GraphBuilder;
use xsp_framework::LayerGraph;

/// DenseNet-121 with growth rate 32.
pub fn densenet121(batch: usize) -> LayerGraph {
    let growth = 32usize;
    let mut b = GraphBuilder::new(batch, 3, 224, 224);
    b.conv_bn_relu(64, 7, 2, 3);
    b.maxpool(3, 2);

    let block_layers = [6usize, 12, 24, 16];
    let mut channels = 64usize;
    for (i, &layers) in block_layers.iter().enumerate() {
        for _ in 0..layers {
            let input = channels;
            let (h, w) = b.spatial();
            // bottleneck: BN-Relu-Conv1x1(4g) -> BN-Relu-Conv3x3(g)
            b.bn().relu();
            b.conv(4 * growth, 1, 1, 0);
            b.bn().relu();
            b.conv(growth, 3, 1, 1);
            channels = input + growth;
            b.set_shape(channels, h, w);
            b.concat(channels);
        }
        if i < 3 {
            // transition: BN-Relu-Conv1x1(c/2)-AvgPool2
            channels /= 2;
            b.bn().relu();
            b.conv(channels, 1, 1, 0);
            b.avgpool(2, 2);
        }
    }
    b.bn().relu();
    b.global_pool();
    b.fc(1000);
    b.softmax();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    #[test]
    fn dense_blocks_total_58_layers_of_convs() {
        // 6+12+24+16 = 58 dense layers × 2 convs + stem + 3 transitions
        let g = densenet121(1);
        let convs = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::Conv2D(_)))
            .count();
        assert_eq!(convs, 58 * 2 + 1 + 3);
    }

    #[test]
    fn concat_heavy_structure() {
        let g = densenet121(1);
        let concats = g
            .layers
            .iter()
            .filter(|l| l.op.type_name() == "ConcatV2")
            .count();
        assert_eq!(concats, 58, "one concat per dense layer");
    }

    #[test]
    fn channel_growth_is_linear_within_blocks() {
        let g = densenet121(1);
        // final dense block ends at 512 + 16*32 = 1024 channels
        let last_concat = g
            .layers
            .iter()
            .rev()
            .find(|l| l.op.type_name() == "ConcatV2")
            .unwrap();
        assert_eq!(last_concat.out_shape.0[1], 1024);
    }

    #[test]
    fn graph_is_compact_on_disk_but_layer_heavy() {
        // DenseNet's defining trait: tiny parameter count, many layers.
        let g = densenet121(1);
        assert!(g.len() > 350, "got {}", g.len());
    }
}
