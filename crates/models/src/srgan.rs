//! SRGAN generator (super-resolution, Table VIII model 55) — residual
//! blocks at constant spatial resolution plus upsampling, conv-dominated
//! (62.3 % in the paper).

use crate::builder::GraphBuilder;
use xsp_framework::LayerGraph;

/// SRGAN generator: 16 residual blocks at 128×128, ×4 upsampling.
pub fn srgan(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 128, 128);
    b.conv(128, 9, 1, 4).bias_add().relu();
    for _ in 0..16 {
        b.conv(128, 3, 1, 1).bn().relu();
        b.conv(128, 3, 1, 1).bn();
        b.residual_add();
    }
    b.conv(128, 3, 1, 1).bn();
    b.residual_add();
    // two ×2 upsample stages (conv + pixel-shuffle modeled as resize)
    for _ in 0..2 {
        b.conv(256, 3, 1, 1);
        b.resize_bilinear(2);
        b.relu();
    }
    b.conv(3, 9, 1, 4);
    b.tanh();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    #[test]
    fn sixteen_residual_blocks() {
        let g = srgan(1);
        let adds = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::AddN(_)))
            .count();
        assert_eq!(adds, 17); // 16 blocks + trunk join
    }

    #[test]
    fn output_is_4x_input() {
        let g = srgan(1);
        let last_conv = g
            .layers
            .iter()
            .rev()
            .find(|l| matches!(l.op, LayerOp::Conv2D(_)))
            .unwrap();
        assert_eq!(&last_conv.out_shape.0[2..], &[512, 512]);
        assert_eq!(last_conv.out_shape.0[1], 3);
    }

    #[test]
    fn structurally_conv_dominated() {
        let g = srgan(1);
        let convs = g.layers.iter().filter(|l| l.op.is_convolution()).count();
        assert!(convs * 4 > g.len(), "{convs} convs of {} layers", g.len());
    }
}
