//! ResNet family: v1, v1.5 (MLPerf), and v2 (pre-activation) at depths 50,
//! 101 and 152, plus the AI-Matrix variants.

use crate::builder::GraphBuilder;
use xsp_framework::LayerGraph;

/// Bottleneck-block counts per stage for each depth.
fn stage_blocks(depth: usize) -> [usize; 4] {
    match depth {
        50 => [3, 4, 6, 3],
        101 => [3, 4, 23, 3],
        152 => [3, 8, 36, 3],
        other => panic!("unsupported ResNet depth {other}"),
    }
}

/// ResNet version: original post-activation vs pre-activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResNetVersion {
    /// v1: conv → BN → Relu, stride on the first 1×1 (v1) or the 3×3
    /// (v1.5/MLPerf).
    V1 {
        /// Place the stage stride on the 3×3 conv (the "v1.5" variant).
        stride_on_3x3: bool,
    },
    /// v2: BN → Relu → conv pre-activation ordering.
    V2,
}

/// Builds a bottleneck residual block in place.
///
/// The builder tracks one tensor sequentially, so the projection shortcut is
/// emitted first and the tracked shape is rewound to the branch point before
/// the main path.
fn bottleneck(
    b: &mut GraphBuilder,
    version: ResNetVersion,
    mid_c: usize,
    out_c: usize,
    stride: usize,
    downsample: bool,
) {
    let in_c = b.channels();
    let (h, w) = b.spatial();
    match version {
        ResNetVersion::V1 { stride_on_3x3 } => {
            let (s1, s3) = if stride_on_3x3 {
                (1, stride)
            } else {
                (stride, 1)
            };
            if downsample {
                b.conv(out_c, 1, stride, 0).bn();
                b.set_shape(in_c, h, w);
            }
            b.conv_bn_relu(mid_c, 1, s1, 0);
            b.conv_bn_relu(mid_c, 3, s3, 1);
            b.conv(out_c, 1, 1, 0).bn();
            b.residual_add().relu();
        }
        ResNetVersion::V2 => {
            b.bn().relu();
            if downsample {
                b.conv(out_c, 1, stride, 0);
                b.set_shape(in_c, h, w);
            }
            b.conv_bn_relu(mid_c, 1, 1, 0);
            b.conv_bn_relu(mid_c, 3, stride, 1);
            b.conv(out_c, 1, 1, 0);
            b.residual_add();
        }
    }
}

/// Appends the ResNet feature extractor (stem + 4 bottleneck stages) to an
/// existing builder — reused by the detection/segmentation second stages.
pub fn resnet_backbone(b: &mut GraphBuilder, depth: usize, version: ResNetVersion) {
    let blocks = stage_blocks(depth);
    b.pad_layer(3);
    b.conv(64, 7, 2, 0).bn().relu();
    b.maxpool(3, 2);

    let stage_out = [256usize, 512, 1024, 2048];
    let stage_mid = [64usize, 128, 256, 512];
    for stage in 0..4 {
        let stride = if stage == 0 { 1 } else { 2 };
        for block in 0..blocks[stage] {
            let s = if block == 0 { stride } else { 1 };
            let ds = block == 0;
            bottleneck(b, version, stage_mid[stage], stage_out[stage], s, ds);
        }
    }
    if version == ResNetVersion::V2 {
        b.bn().relu();
    }
}

/// Appends a ResNet-34 basic-block backbone (the MLPerf SSD feature
/// extractor): stages of two 3×3 convolutions each, no bottlenecks.
pub fn resnet34_backbone(b: &mut GraphBuilder) {
    b.pad_layer(3);
    b.conv(64, 7, 2, 0).bn().relu();
    b.maxpool(3, 2);
    let stage_c = [64usize, 128, 256, 512];
    let blocks = [3usize, 4, 6, 3];
    for stage in 0..4 {
        let stride = if stage == 0 { 1 } else { 2 };
        for block in 0..blocks[stage] {
            let s = if block == 0 { stride } else { 1 };
            let in_c = b.channels();
            let (h, w) = b.spatial();
            if s != 1 || in_c != stage_c[stage] {
                b.conv(stage_c[stage], 1, s, 0).bn();
                b.set_shape(in_c, h, w);
            }
            b.conv_bn_relu(stage_c[stage], 3, s, 1);
            b.conv(stage_c[stage], 3, 1, 1).bn();
            b.residual_add().relu();
        }
    }
}

/// Builds a full ResNet classifier graph.
pub fn resnet(batch: usize, depth: usize, version: ResNetVersion, classes: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 224, 224);
    resnet_backbone(&mut b, depth, version);
    b.global_pool();
    b.fc(classes);
    b.bias_add();
    b.softmax();
    b.finish()
}

/// MLPerf_ResNet50_v1.5: the reference model of the paper's walkthroughs.
pub fn mlperf_resnet50_v15(batch: usize) -> LayerGraph {
    resnet(
        batch,
        50,
        ResNetVersion::V1 {
            stride_on_3x3: true,
        },
        1001,
    )
}

/// ResNet v1 at `depth` ∈ {50, 101, 152}.
pub fn resnet_v1(batch: usize, depth: usize) -> LayerGraph {
    resnet(
        batch,
        depth,
        ResNetVersion::V1 {
            stride_on_3x3: false,
        },
        1000,
    )
}

/// ResNet v2 at `depth` ∈ {50, 101, 152}.
pub fn resnet_v2(batch: usize, depth: usize) -> LayerGraph {
    resnet(batch, depth, ResNetVersion::V2, 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_v15_layer_count_matches_paper_scale() {
        // Paper: "In total, there are 234 layers" for the TF-executed graph.
        // The static graph here carries FusedBatchNorm layers that TF
        // decomposes 1→2, so executed = static + #BN.
        let g = mlperf_resnet50_v15(256);
        let bn = g
            .layers
            .iter()
            .filter(|l| l.op.type_name() == "BatchNorm")
            .count();
        let executed = g.len() + bn;
        assert!(
            (225..=245).contains(&executed),
            "executed layer count {executed} (static {} + bn {bn})",
            g.len()
        );
    }

    #[test]
    fn resnet50_conv_count() {
        // 16 blocks × 3 convs + 4 downsample + stem = 53 convolutions.
        let g = mlperf_resnet50_v15(1);
        let convs = g
            .layers
            .iter()
            .filter(|l| l.op.type_name() == "Conv2D")
            .count();
        assert_eq!(convs, 53);
    }

    #[test]
    fn deeper_resnets_have_more_layers() {
        let l50 = resnet_v1(1, 50).len();
        let l101 = resnet_v1(1, 101).len();
        let l152 = resnet_v1(1, 152).len();
        assert!(l50 < l101 && l101 < l152);
    }

    #[test]
    fn output_is_class_distribution() {
        let g = mlperf_resnet50_v15(4);
        let last = g.layers.last().unwrap();
        assert_eq!(last.op.type_name(), "Softmax");
        assert_eq!(last.out_shape.elements(), 4 * 1001);
    }

    #[test]
    fn v2_uses_preactivation_ordering() {
        let g = resnet_v2(1, 50);
        // v2 ends with a final BN+Relu before pooling
        let names: Vec<&str> = g.layers.iter().map(|l| l.op.type_name()).collect();
        let mean_pos = names.iter().position(|n| *n == "Mean").unwrap();
        assert_eq!(names[mean_pos - 1], "Relu");
        assert_eq!(names[mean_pos - 2], "BatchNorm");
    }

    #[test]
    fn final_spatial_extent_is_7x7() {
        // 224 → stem/4 → stages strides 1,2,2,2 → 7
        let g = mlperf_resnet50_v15(1);
        let last_conv = g
            .layers
            .iter()
            .rev()
            .find(|l| l.op.type_name() == "Conv2D")
            .unwrap();
        assert_eq!(&last_conv.out_shape.0[2..], &[7, 7]);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn bad_depth_panics() {
        resnet_v1(1, 34);
    }
}
