//! BVLC AlexNet (Caffe): the small early-era model — lowest conv share of
//! the image-classification set (36.3 % in Table VIII).

use crate::builder::GraphBuilder;
use xsp_framework::LayerGraph;

/// BVLC AlexNet.
pub fn alexnet(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 227, 227);
    b.conv(96, 11, 4, 0).bias_add().relu();
    b.lrn();
    b.maxpool(3, 2);
    b.conv(256, 5, 1, 2).bias_add().relu();
    b.lrn();
    b.maxpool(3, 2);
    b.conv(384, 3, 1, 1).bias_add().relu();
    b.conv(384, 3, 1, 1).bias_add().relu();
    b.conv(256, 3, 1, 1).bias_add().relu();
    b.maxpool(3, 2);
    b.fc(4096).bias_add().relu();
    b.fc(4096).bias_add().relu();
    b.fc(1000).bias_add();
    b.softmax();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    #[test]
    fn five_convs_three_fcs_two_lrns() {
        let g = alexnet(1);
        let count = |pred: fn(&LayerOp) -> bool| g.layers.iter().filter(|l| pred(&l.op)).count();
        assert_eq!(count(|op| matches!(op, LayerOp::Conv2D(_))), 5);
        assert_eq!(count(|op| matches!(op, LayerOp::MatMul { .. })), 3);
        assert_eq!(count(|op| matches!(op, LayerOp::Lrn)), 2);
    }

    #[test]
    fn fc_weights_dominate() {
        // fc6 weights are the reason AlexNet's graph is 233 MB. (The
        // builder's pooling uses ceil shape rules, giving 7×7×256 rather
        // than Caffe's 6×6×256 — flop-equivalent within 36 %.)
        let g = alexnet(1);
        if let LayerOp::MatMul {
            in_features,
            out_features,
        } = g
            .layers
            .iter()
            .find(|l| matches!(l.op, LayerOp::MatMul { .. }))
            .unwrap()
            .op
        {
            assert_eq!(in_features, 7 * 7 * 256);
            assert_eq!(out_features, 4096);
        }
    }

    #[test]
    fn small_layer_count() {
        assert!(alexnet(1).len() < 35);
    }
}
