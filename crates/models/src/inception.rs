//! Inception family: GoogLeNet / Inception v1–v4 and Inception-ResNet v2.
//!
//! Multi-branch modules are built sequentially: each branch starts by
//! rewinding the tracked shape to the module input, and the module ends with
//! a `Concat` layer carrying the combined channel count — matching how the
//! executed graph interleaves branch ops in practice.

use crate::builder::GraphBuilder;
use xsp_framework::LayerGraph;

/// Runs `f` as a branch from the current module input shape.
fn with_branch(
    b: &mut GraphBuilder,
    input: (usize, usize, usize),
    f: impl FnOnce(&mut GraphBuilder),
) {
    b.set_shape(input.0, input.1, input.2);
    f(b);
}

fn module_input(b: &GraphBuilder) -> (usize, usize, usize) {
    let (h, w) = b.spatial();
    (b.channels(), h, w)
}

/// Classic GoogLeNet inception module: 1×1 / 1×1→3×3 / 1×1→5×5 / pool→1×1.
#[allow(clippy::too_many_arguments)] // mirrors the module's published channel table
fn inception_v1_module(
    b: &mut GraphBuilder,
    with_bn: bool,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    cp: usize,
) {
    let input = module_input(b);
    let cbr = |b: &mut GraphBuilder, c: usize, k: usize, pad: usize| {
        if with_bn {
            b.conv_bn_relu(c, k, 1, pad);
        } else {
            b.conv(c, k, 1, pad).bias_add().relu();
        }
    };
    with_branch(b, input, |b| cbr(b, c1, 1, 0));
    with_branch(b, input, |b| {
        cbr(b, c3r, 1, 0);
        cbr(b, c3, 3, 1);
    });
    with_branch(b, input, |b| {
        cbr(b, c5r, 1, 0);
        cbr(b, c5, 5, 2);
    });
    with_branch(b, input, |b| {
        b.maxpool(3, 1);
        cbr(b, cp, 1, 0);
    });
    b.concat(c1 + c3 + c5 + cp);
}

/// GoogLeNet / Inception v1 (`with_bn` = TF-slim style; `false` = BVLC
/// Caffe style with LRN).
pub fn inception_v1(batch: usize, with_bn: bool, classes: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 224, 224);
    if with_bn {
        b.conv_bn_relu(64, 7, 2, 3);
    } else {
        b.conv(64, 7, 2, 3).bias_add().relu();
    }
    b.maxpool(3, 2);
    if !with_bn {
        b.lrn();
    }
    if with_bn {
        b.conv_bn_relu(64, 1, 1, 0);
        b.conv_bn_relu(192, 3, 1, 1);
    } else {
        b.conv(64, 1, 1, 0).bias_add().relu();
        b.conv(192, 3, 1, 1).bias_add().relu();
        b.lrn();
    }
    b.maxpool(3, 2); // 28x28
    inception_v1_module(&mut b, with_bn, 64, 96, 128, 16, 32, 32); // 3a -> 256
    inception_v1_module(&mut b, with_bn, 128, 128, 192, 32, 96, 64); // 3b -> 480
    b.maxpool(3, 2); // 14x14
    inception_v1_module(&mut b, with_bn, 192, 96, 208, 16, 48, 64); // 4a
    inception_v1_module(&mut b, with_bn, 160, 112, 224, 24, 64, 64); // 4b
    inception_v1_module(&mut b, with_bn, 128, 128, 256, 24, 64, 64); // 4c
    inception_v1_module(&mut b, with_bn, 112, 144, 288, 32, 64, 64); // 4d
    inception_v1_module(&mut b, with_bn, 256, 160, 320, 32, 128, 128); // 4e
    b.maxpool(3, 2); // 7x7
    inception_v1_module(&mut b, with_bn, 256, 160, 320, 32, 128, 128); // 5a
    inception_v1_module(&mut b, with_bn, 384, 192, 384, 48, 128, 128); // 5b -> 1024
    b.global_pool();
    b.fc(classes);
    b.softmax();
    b.finish()
}

/// Appends the Inception v2 feature extractor (detection backbones reuse
/// it).
pub fn inception_v2_backbone(b: &mut GraphBuilder) {
    b.conv_bn_relu(64, 7, 2, 3);
    b.maxpool(3, 2);
    b.conv_bn_relu(64, 1, 1, 0);
    b.conv_bn_relu(192, 3, 1, 1);
    b.maxpool(3, 2);
    let module = |b: &mut GraphBuilder,
                  c1: usize,
                  c3r: usize,
                  c3: usize,
                  c5r: usize,
                  c5: usize,
                  cp: usize| {
        let input = module_input(b);
        with_branch(b, input, |b| {
            b.conv_bn_relu(c1, 1, 1, 0);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(c3r, 1, 1, 0);
            b.conv_bn_relu(c3, 3, 1, 1);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(c5r, 1, 1, 0);
            b.conv_bn_relu(c5, 3, 1, 1);
            b.conv_bn_relu(c5, 3, 1, 1);
        });
        with_branch(b, input, |b| {
            b.avgpool(3, 1);
            b.conv_bn_relu(cp, 1, 1, 0);
        });
        b.concat(c1 + c3 + c5 + cp);
    };
    module(b, 64, 64, 64, 64, 96, 32);
    module(b, 64, 64, 96, 64, 96, 64);
    b.maxpool(3, 2);
    module(b, 224, 64, 96, 96, 128, 128);
    module(b, 192, 96, 128, 96, 128, 128);
    module(b, 160, 128, 160, 128, 160, 96);
    module(b, 96, 128, 192, 160, 192, 96);
    b.maxpool(3, 2);
    module(b, 352, 192, 320, 160, 224, 128);
    module(b, 352, 192, 320, 192, 224, 128);
}

/// Inception v2: v1 topology with BN everywhere and 5×5 factored into two
/// 3×3 convs.
pub fn inception_v2(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 224, 224);
    inception_v2_backbone(&mut b);
    b.global_pool();
    b.fc(1000);
    b.softmax();
    b.finish()
}

/// Inception v3 (299×299 input) with factorized 7×1/1×7 middle modules.
pub fn inception_v3(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 299, 299);
    // stem
    b.conv_bn_relu(32, 3, 2, 0); // 149
    b.conv_bn_relu(32, 3, 1, 0); // 147
    b.conv_bn_relu(64, 3, 1, 1);
    b.maxpool(3, 2); // 73
    b.conv_bn_relu(80, 1, 1, 0);
    b.conv_bn_relu(192, 3, 1, 0); // 71
    b.maxpool(3, 2); // 35

    // 3 × mixed 35×35 (5b, 5c, 5d)
    for pool_c in [32usize, 64, 64] {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(64, 1, 1, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(48, 1, 1, 0);
            b.conv_bn_relu(64, 5, 1, 2);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(64, 1, 1, 0);
            b.conv_bn_relu(96, 3, 1, 1);
            b.conv_bn_relu(96, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.avgpool(3, 1);
            b.conv_bn_relu(pool_c, 1, 1, 0);
        });
        b.concat(64 + 64 + 96 + pool_c);
    }

    // grid reduction to 17×17
    {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(384, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(64, 1, 1, 0);
            b.conv_bn_relu(96, 3, 1, 1);
            b.conv_bn_relu(96, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.maxpool(3, 2);
        });
        b.concat(384 + 96 + input.0);
    }

    // 4 × mixed 17×17 with 7×1 factorization (approximated as two 3×3-cost
    // convs plus the 1×1s; flop-equivalent to 1x7+7x1 pairs)
    for mid in [128usize, 160, 160, 192] {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(mid, 1, 1, 0);
            b.conv_bn_relu(mid, 3, 1, 1); // ≈ 1x7 + 7x1
            b.conv_bn_relu(192, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(mid, 1, 1, 0);
            b.conv_bn_relu(mid, 3, 1, 1);
            b.conv_bn_relu(192, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.avgpool(3, 1);
            b.conv_bn_relu(192, 1, 1, 0);
        });
        b.concat(192 * 4);
    }

    // grid reduction to 8×8
    {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
            b.conv_bn_relu(320, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
            b.conv_bn_relu(192, 3, 1, 1);
            b.conv_bn_relu(192, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.maxpool(3, 2);
        });
        b.concat(320 + 192 + input.0);
    }

    // 2 × mixed 8×8
    for _ in 0..2 {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(320, 1, 1, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(384, 1, 1, 0);
            b.conv_bn_relu(384, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(448, 1, 1, 0);
            b.conv_bn_relu(384, 3, 1, 1);
            b.conv_bn_relu(384, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.avgpool(3, 1);
            b.conv_bn_relu(192, 1, 1, 0);
        });
        b.concat(320 + 384 + 384 + 192 + 768); // ≈2048 executed width
        b.set_channels(2048);
    }

    b.global_pool();
    b.fc(1000);
    b.softmax();
    b.finish()
}

/// Inception v4 (299×299): deeper stacks of A/B/C modules.
pub fn inception_v4(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 299, 299);
    // stem
    b.conv_bn_relu(32, 3, 2, 0);
    b.conv_bn_relu(32, 3, 1, 0);
    b.conv_bn_relu(64, 3, 1, 1);
    b.maxpool(3, 2);
    b.conv_bn_relu(96, 3, 1, 0);
    b.conv_bn_relu(96, 1, 1, 0);
    b.conv_bn_relu(192, 3, 1, 0);
    b.maxpool(3, 2); // ~35x35
    b.set_channels(384);

    // 4 × inception-A
    for _ in 0..4 {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(96, 1, 1, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(64, 1, 1, 0);
            b.conv_bn_relu(96, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(64, 1, 1, 0);
            b.conv_bn_relu(96, 3, 1, 1);
            b.conv_bn_relu(96, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.avgpool(3, 1);
            b.conv_bn_relu(96, 1, 1, 0);
        });
        b.concat(384);
    }
    // reduction-A
    {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(384, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
            b.conv_bn_relu(224, 3, 1, 1);
            b.conv_bn_relu(256, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.maxpool(3, 2);
        });
        b.concat(1024);
    }
    // 7 × inception-B (factorized 7x1/1x7, flop-approximated)
    for _ in 0..7 {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(384, 1, 1, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
            b.conv_bn_relu(224, 3, 1, 1);
            b.conv_bn_relu(256, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
            b.conv_bn_relu(224, 3, 1, 1);
            b.conv_bn_relu(256, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.avgpool(3, 1);
            b.conv_bn_relu(128, 1, 1, 0);
        });
        b.concat(1024);
    }
    // reduction-B
    {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
            b.conv_bn_relu(192, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(256, 1, 1, 0);
            b.conv_bn_relu(320, 3, 1, 1);
            b.conv_bn_relu(320, 3, 2, 0);
        });
        with_branch(&mut b, input, |b| {
            b.maxpool(3, 2);
        });
        b.concat(1536);
    }
    // 3 × inception-C
    for _ in 0..3 {
        let input = module_input(&b);
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(256, 1, 1, 0);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(384, 1, 1, 0);
            b.conv_bn_relu(256, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.conv_bn_relu(384, 1, 1, 0);
            b.conv_bn_relu(448, 3, 1, 1);
            b.conv_bn_relu(256, 3, 1, 1);
        });
        with_branch(&mut b, input, |b| {
            b.avgpool(3, 1);
            b.conv_bn_relu(256, 1, 1, 0);
        });
        b.concat(1536);
    }
    b.global_pool();
    b.fc(1000);
    b.softmax();
    b.finish()
}

/// Appends the Inception-ResNet v2 feature extractor (Mask R-CNN reuses
/// it).
pub fn inception_resnet_v2_backbone(b: &mut GraphBuilder) {
    b.conv_bn_relu(32, 3, 2, 0);
    b.conv_bn_relu(32, 3, 1, 0);
    b.conv_bn_relu(64, 3, 1, 1);
    b.maxpool(3, 2);
    b.conv_bn_relu(80, 1, 1, 0);
    b.conv_bn_relu(192, 3, 1, 0);
    b.maxpool(3, 2);
    b.set_channels(320);

    // 5 × block35 (residual)
    for _ in 0..5 {
        let input = module_input(b);
        with_branch(b, input, |b| {
            b.conv_bn_relu(32, 1, 1, 0);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(32, 1, 1, 0);
            b.conv_bn_relu(32, 3, 1, 1);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(32, 1, 1, 0);
            b.conv_bn_relu(48, 3, 1, 1);
            b.conv_bn_relu(64, 3, 1, 1);
        });
        b.concat(128);
        b.conv(input.0, 1, 1, 0); // projection back to input width
        b.mul(); // residual scaling
        b.residual_add().relu();
    }
    // reduction to 17×17
    {
        let input = module_input(b);
        with_branch(b, input, |b| {
            b.conv_bn_relu(384, 3, 2, 0);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(256, 1, 1, 0);
            b.conv_bn_relu(256, 3, 1, 1);
            b.conv_bn_relu(384, 3, 2, 0);
        });
        with_branch(b, input, |b| {
            b.maxpool(3, 2);
        });
        b.concat(1088);
    }
    // 10 × block17 (residual)
    for _ in 0..10 {
        let input = module_input(b);
        with_branch(b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(128, 1, 1, 0);
            b.conv_bn_relu(160, 3, 1, 1); // ≈1x7
            b.conv_bn_relu(192, 3, 1, 1); // ≈7x1
        });
        b.concat(384);
        b.conv(input.0, 1, 1, 0);
        b.mul();
        b.residual_add().relu();
    }
    // reduction to 8×8
    {
        let input = module_input(b);
        with_branch(b, input, |b| {
            b.conv_bn_relu(256, 1, 1, 0);
            b.conv_bn_relu(384, 3, 2, 0);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(256, 1, 1, 0);
            b.conv_bn_relu(288, 3, 2, 0);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(256, 1, 1, 0);
            b.conv_bn_relu(288, 3, 1, 1);
            b.conv_bn_relu(320, 3, 2, 0);
        });
        with_branch(b, input, |b| {
            b.maxpool(3, 2);
        });
        b.concat(2080);
    }
    // 5 × block8 (residual)
    for _ in 0..5 {
        let input = module_input(b);
        with_branch(b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
        });
        with_branch(b, input, |b| {
            b.conv_bn_relu(192, 1, 1, 0);
            b.conv_bn_relu(224, 3, 1, 1);
            b.conv_bn_relu(256, 3, 1, 1);
        });
        b.concat(448);
        b.conv(input.0, 1, 1, 0);
        b.mul();
        b.residual_add().relu();
    }
    b.conv_bn_relu(1536, 1, 1, 0);
}

/// Inception-ResNet v2 (299×299): residual inception blocks.
pub fn inception_resnet_v2(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 299, 299);
    inception_resnet_v2_backbone(&mut b);
    b.global_pool();
    b.fc(1000);
    b.softmax();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::FrameworkKind;

    #[test]
    fn v1_has_nine_modules() {
        let g = inception_v1(1, true, 1000);
        let concats = g
            .layers
            .iter()
            .filter(|l| l.op.type_name() == "ConcatV2")
            .count();
        assert_eq!(concats, 9);
    }

    #[test]
    fn bvlc_variant_uses_lrn_and_no_bn() {
        let g = inception_v1(1, false, 1000);
        assert!(g.layers.iter().any(|l| l.op.type_name() == "LRN"));
        assert!(!g.layers.iter().any(|l| l.op.type_name() == "BatchNorm"));
    }

    #[test]
    fn family_depth_ordering() {
        // deeper variants have more layers: v1 < v3 < v4 < inception-resnet
        let v1 = inception_v1(1, true, 1000).len();
        let v3 = inception_v3(1).len();
        let v4 = inception_v4(1).len();
        let ir2 = inception_resnet_v2(1).len();
        assert!(v1 < v3, "{v1} {v3}");
        assert!(v3 < v4, "{v3} {v4}");
        assert!(v4 < ir2, "{v4} {ir2}");
    }

    #[test]
    fn v3_input_is_299() {
        let g = inception_v3(2);
        assert_eq!(g.layers[0].out_shape.0, vec![2, 3, 299, 299]);
    }

    #[test]
    fn graphs_execute_under_both_frameworks() {
        for g in [inception_v3(1), inception_resnet_v2(1)] {
            let tf = FrameworkKind::TensorFlow.prepare_graph(&g);
            assert!(tf.len() > g.len(), "BN decomposition grows the graph");
            let mx = FrameworkKind::MXNet.prepare_graph(&g);
            assert_eq!(mx.len(), g.len());
        }
    }

    #[test]
    fn inception_resnet_has_residual_adds() {
        let g = inception_resnet_v2(1);
        let adds = g
            .layers
            .iter()
            .filter(|l| l.op.type_name() == "AddN")
            .count();
        assert_eq!(adds, 20, "5 + 10 + 5 residual blocks");
    }
}
