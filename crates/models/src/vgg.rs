//! VGG-16/19: plain deep stacks without BN, with the giant FC head that
//! makes their frozen graphs 500+ MB.

use crate::builder::GraphBuilder;
use xsp_framework::LayerGraph;

/// Convolutions per stage: VGG-16 = [2,2,3,3,3]; VGG-19 = [2,2,4,4,4].
fn stage_convs(depth: usize) -> [usize; 5] {
    match depth {
        16 => [2, 2, 3, 3, 3],
        19 => [2, 2, 4, 4, 4],
        other => panic!("unsupported VGG depth {other}"),
    }
}

/// VGG at `depth` ∈ {16, 19}.
pub fn vgg(batch: usize, depth: usize) -> LayerGraph {
    let convs = stage_convs(depth);
    let channels = [64usize, 128, 256, 512, 512];
    let mut b = GraphBuilder::new(batch, 3, 224, 224);
    for stage in 0..5 {
        for _ in 0..convs[stage] {
            b.conv(channels[stage], 3, 1, 1).bias_add().relu();
        }
        b.maxpool(2, 2);
    }
    // classifier head: fc6/fc7/fc8
    b.fc(4096).bias_add().relu();
    b.fc(4096).bias_add().relu();
    b.fc(1000).bias_add();
    b.softmax();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    #[test]
    fn vgg16_has_13_convs_and_3_fcs() {
        let g = vgg(1, 16);
        let convs = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::Conv2D(_)))
            .count();
        let fcs = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::MatMul { .. }))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
    }

    #[test]
    fn vgg19_has_16_convs() {
        let g = vgg(1, 19);
        let convs = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::Conv2D(_)))
            .count();
        assert_eq!(convs, 16);
    }

    #[test]
    fn no_batchnorm_anywhere() {
        assert!(!vgg(1, 16)
            .layers
            .iter()
            .any(|l| l.op.type_name() == "BatchNorm"));
    }

    #[test]
    fn fc6_consumes_7x7x512() {
        let g = vgg(1, 16);
        let fc = g
            .layers
            .iter()
            .find(|l| matches!(l.op, LayerOp::MatMul { .. }))
            .unwrap();
        if let LayerOp::MatMul { in_features, .. } = fc.op {
            assert_eq!(in_features, 7 * 7 * 512);
        }
    }

    #[test]
    fn vgg_flops_exceed_resnet50() {
        // VGG-16 ≈ 31 Gflop/image vs ResNet-50 ≈ 8.2: the paper's Table IX
        // ordering (VGG 2655 Gflops vs ResNet 1742 at b256) depends on it.
        let flops = |g: &LayerGraph| -> u64 {
            g.layers
                .iter()
                .filter_map(|l| match &l.op {
                    LayerOp::Conv2D(p) => Some(p.direct_flops()),
                    LayerOp::MatMul {
                        in_features,
                        out_features,
                    } => Some(2 * *in_features as u64 * *out_features as u64),
                    _ => None,
                })
                .sum()
        };
        let v = flops(&vgg(1, 16));
        let r = flops(&crate::resnet::mlperf_resnet50_v15(1));
        assert!(v > 2 * r, "VGG {v} vs ResNet {r}");
    }
}
