//! MobileNet v1 (the 16-variant α×resolution grid of Table VIII) and
//! MobileNet v2 (SSD/DeepLab backbones).

use crate::builder::GraphBuilder;
use xsp_framework::LayerGraph;

fn scaled(c: usize, alpha: f64) -> usize {
    ((c as f64 * alpha).round() as usize).max(8)
}

/// Appends the MobileNet v1 feature extractor (stem + 13 separable blocks).
pub fn mobilenet_v1_backbone(b: &mut GraphBuilder, alpha: f64) {
    b.conv_bn_relu6(scaled(32, alpha), 3, 2, 1);
    // 13 depthwise-separable blocks: (stride, pointwise channels)
    let blocks: [(usize, usize); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    for (stride, pw_c) in blocks {
        b.dwconv(3, stride, 1).bn().relu6();
        b.conv_bn_relu6(scaled(pw_c, alpha), 1, 1, 0);
    }
}

/// MobileNet v1 at width multiplier `alpha` ∈ {0.25, 0.5, 0.75, 1.0} and
/// input `resolution` ∈ {128, 160, 192, 224}.
pub fn mobilenet_v1(batch: usize, alpha: f64, resolution: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, resolution, resolution);
    mobilenet_v1_backbone(&mut b, alpha);
    b.global_pool();
    b.fc(1001);
    b.softmax();
    b.finish()
}

/// Appends the MobileNet v2 feature extractor (inverted residuals).
pub fn mobilenet_v2_backbone(b: &mut GraphBuilder, alpha: f64) {
    b.conv_bn_relu6(scaled(32, alpha), 3, 2, 1);
    // inverted residual blocks: (expansion, out_c, repeats, stride)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (expand, out_c, repeats, first_stride) in cfg {
        for r in 0..repeats {
            let stride = if r == 0 { first_stride } else { 1 };
            let in_c = b.channels();
            let (h, w) = b.spatial();
            let residual = stride == 1 && in_c == scaled(out_c, alpha);
            if expand != 1 {
                b.conv_bn_relu6(in_c * expand, 1, 1, 0);
            }
            b.dwconv(3, stride, 1).bn().relu6();
            b.conv(scaled(out_c, alpha), 1, 1, 0).bn(); // linear bottleneck
            if residual {
                b.residual_add();
            }
            let _ = (h, w);
        }
    }
    b.conv_bn_relu6(1280.max(scaled(1280, alpha)), 1, 1, 0);
}

/// MobileNet v2 classifier at width multiplier `alpha`.
pub fn mobilenet_v2(batch: usize, alpha: f64, resolution: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, resolution, resolution);
    mobilenet_v2_backbone(&mut b, alpha);
    b.global_pool();
    b.fc(1001);
    b.softmax();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    #[test]
    fn v1_has_13_depthwise_blocks() {
        let g = mobilenet_v1(1, 1.0, 224);
        let dw = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::DepthwiseConv2dNative(_)))
            .count();
        assert_eq!(dw, 13);
        // 1 stem + 13 pointwise convolutions
        let convs = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::Conv2D(_)))
            .count();
        assert_eq!(convs, 14);
    }

    #[test]
    fn alpha_scales_channels() {
        let full = mobilenet_v1(1, 1.0, 224);
        let quarter = mobilenet_v1(1, 0.25, 224);
        let widest = |g: &xsp_framework::LayerGraph| {
            g.layers
                .iter()
                .filter(|l| l.out_shape.0.len() == 4)
                .filter_map(|l| l.out_shape.0.get(1).copied())
                .max()
                .unwrap()
        };
        assert_eq!(widest(&full), 1024);
        assert_eq!(widest(&quarter), 256);
    }

    #[test]
    fn resolution_flows_through() {
        let g = mobilenet_v1(1, 0.5, 160);
        assert_eq!(g.layers[0].out_shape.0[2], 160);
    }

    #[test]
    fn v1_final_spatial_is_resolution_over_32() {
        for res in [128usize, 160, 192, 224] {
            let g = mobilenet_v1(1, 1.0, res);
            let last_conv = g
                .layers
                .iter()
                .rev()
                .find(|l| matches!(l.op, LayerOp::Conv2D(_)))
                .unwrap();
            assert_eq!(last_conv.out_shape.0[2], res / 32, "res {res}");
        }
    }

    #[test]
    fn v2_has_inverted_residuals() {
        let g = mobilenet_v2(1, 1.0, 224);
        let adds = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::AddN(_)))
            .count();
        assert!(adds >= 8, "got {adds} residual adds");
    }

    #[test]
    fn smaller_alpha_smaller_flops() {
        let flops = |alpha: f64| -> u64 {
            mobilenet_v1(1, alpha, 224)
                .layers
                .iter()
                .filter_map(|l| match &l.op {
                    LayerOp::Conv2D(p) => Some(p.direct_flops()),
                    _ => None,
                })
                .sum()
        };
        assert!(flops(0.25) < flops(0.5));
        assert!(flops(0.5) < flops(1.0));
    }
}
