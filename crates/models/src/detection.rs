//! Object-detection models: Faster R-CNN and SSD families (Table VIII
//! models 38–47).
//!
//! The structural signature the paper measures for these models is a small
//! convolution share — "the dominating layer type is Where" (§IV-A) — and
//! small optimal batch sizes. The graphs therefore pair a convolutional
//! backbone with a post-processing head full of `Where` / `Reshape` / NMS /
//! crop ops whose (host-side) cost scales with batch.

use crate::builder::GraphBuilder;
use crate::inception::inception_v2_backbone;
use crate::mobilenet::{mobilenet_v1_backbone, mobilenet_v2_backbone};
use crate::resnet::{resnet34_backbone, resnet_backbone, ResNetVersion};
use xsp_framework::LayerGraph;

/// Appends a first-stage RPN: 3×3 conv plus objectness/box 1×1 heads and
/// the proposal-decode op storm.
fn rpn_head(b: &mut GraphBuilder, anchors: usize) {
    let c = b.channels();
    let (h, w) = b.spatial();
    b.conv(512, 3, 1, 1).bias_add().relu();
    b.conv(anchors * 2, 1, 1, 0); // objectness
    b.set_shape(512, h, w);
    b.conv(anchors * 4, 1, 1, 0); // box regressors
    b.set_shape(c, h, w);
}

/// Appends the proposal/post-processing op storm common to detection heads:
/// `count` Where ops with interleaved reshapes, then NMS.
fn decode_storm(b: &mut GraphBuilder, count: usize) {
    let c = b.channels();
    let (h, w) = b.spatial();
    // decode operates on anchor-sized tensors, far smaller than features
    b.set_shape(4, (h * w / 16).max(1), 16);
    for i in 0..count {
        b.where_op();
        if i % 3 == 0 {
            b.reshape(4, (h * w / 16).max(1), 16);
        }
        if i % 7 == 0 {
            b.transpose();
        }
    }
    b.nms();
    b.set_shape(c, h, w);
}

/// Generic Faster R-CNN: backbone → RPN → proposal storm → ROI crop →
/// second stage → class/box heads → final storm.
fn faster_rcnn(
    mut b: GraphBuilder,
    backbone: impl FnOnce(&mut GraphBuilder),
    second_stage_c: usize,
    storm: usize,
) -> LayerGraph {
    backbone(&mut b);
    rpn_head(&mut b, 12);
    decode_storm(&mut b, storm / 2);
    // ROI crop: proposals × 14×14 crops, folded into one flop-equivalent
    // tensor (≈64 live proposals at 7×7 after pooling ⇒ 56×56).
    b.crop_and_resize(64, 56, 56);
    b.set_shape(second_stage_c, 56, 56);
    // second stage: three bottleneck-ish conv groups over the crops
    for _ in 0..3 {
        b.conv_bn_relu(second_stage_c / 2, 1, 1, 0);
        b.conv_bn_relu(second_stage_c / 2, 3, 1, 1);
        b.conv_bn_relu(second_stage_c, 1, 1, 0);
    }
    b.global_pool();
    b.fc(91 * 5);
    decode_storm(&mut b, storm / 2);
    b.softmax();
    b.finish()
}

/// Faster_RCNN_ResNet101 (600×600 inputs).
pub fn faster_rcnn_resnet101(batch: usize) -> LayerGraph {
    let b = GraphBuilder::new(batch, 3, 512, 512);
    faster_rcnn(
        b,
        |b| {
            resnet_backbone(
                b,
                101,
                ResNetVersion::V1 {
                    stride_on_3x3: false,
                },
            )
        },
        1024,
        220,
    )
}

/// Faster_RCNN_ResNet50.
pub fn faster_rcnn_resnet50(batch: usize) -> LayerGraph {
    let b = GraphBuilder::new(batch, 3, 512, 512);
    faster_rcnn(
        b,
        |b| {
            resnet_backbone(
                b,
                50,
                ResNetVersion::V1 {
                    stride_on_3x3: false,
                },
            )
        },
        1024,
        220,
    )
}

/// Faster_RCNN_Inception_v2 (the smallest, most Where-bound variant).
pub fn faster_rcnn_inception_v2(batch: usize) -> LayerGraph {
    let b = GraphBuilder::new(batch, 3, 512, 512);
    faster_rcnn(b, inception_v2_backbone, 576, 240)
}

/// Faster_RCNN_NAS: enormous NASNet backbone at 1200×1200 — the slowest
/// model in Table VIII (conv-dominated, ~5 s online).
pub fn faster_rcnn_nas(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 1200, 1200);
    // NASNet-A-large-style stem + separable-conv cell stacks. The paper's
    // variant runs 1200x1200 inputs through N=6 normal cells per stage with
    // wide channels; each cell expands through five separable-conv branches.
    b.conv_bn_relu(96, 3, 2, 1);
    let cells: [(usize, usize, usize); 3] = [(336, 10, 2), (672, 10, 2), (1344, 10, 2)];
    for (c, repeat, stride) in cells {
        b.dwconv(5, stride, 2).bn().relu();
        b.conv_bn_relu(c, 1, 1, 0);
        for _ in 0..repeat {
            // a NASNet cell ≈ 5 separable-conv branches + residual join
            for k in [5usize, 3, 5, 3, 3] {
                b.dwconv(k, 1, k / 2).bn().relu();
                b.conv_bn_relu(c, 1, 1, 0);
            }
            b.residual_add();
        }
    }
    rpn_head(&mut b, 12);
    decode_storm(&mut b, 100);
    // NAS second stage re-runs cells over every proposal crop: the paper's
    // dominant cost. ≈100 proposals at 17x17 fold into a 170x170-equivalent.
    b.crop_and_resize(100, 170, 170);
    b.set_shape(1344, 170, 170);
    for _ in 0..4 {
        for k in [5usize, 3, 3] {
            b.dwconv(k, 1, k / 2).bn().relu();
            b.conv_bn_relu(1344, 1, 1, 0);
        }
        b.residual_add();
    }
    b.global_pool();
    b.fc(91 * 5);
    decode_storm(&mut b, 100);
    b.softmax();
    b.finish()
}

/// Generic single-shot detector head over the current feature map plus
/// `extra_maps` downsampled maps.
fn ssd_head(b: &mut GraphBuilder, extra_maps: usize, storm: usize) {
    for _ in 0..extra_maps {
        // extra feature maps taper: 512 -> 256 -> 256 -> 128 style
        let next = (b.channels() / 2).max(128);
        b.conv_bn_relu(next / 2, 1, 1, 0);
        b.conv_bn_relu(next, 3, 2, 1);
        // per-map class+box convs
        let (h, w) = b.spatial();
        b.conv(6 * 91, 3, 1, 1);
        b.set_shape(next, h, w);
        b.conv(6 * 4, 3, 1, 1);
        b.set_shape(next, h, w);
    }
    decode_storm(b, storm);
}

/// MLPerf_SSD_MobileNet_v1_300x300.
pub fn ssd_mobilenet_v1(batch: usize, storm: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 300, 300);
    mobilenet_v1_backbone(&mut b, 1.0);
    ssd_head(&mut b, 4, storm);
    b.finish()
}

/// SSD_MobileNet_v1_FPN (640×640 + feature pyramid).
pub fn ssd_mobilenet_v1_fpn(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 640, 640);
    mobilenet_v1_backbone(&mut b, 1.0);
    // FPN lateral + top-down merges
    for _ in 0..3 {
        b.conv_bn_relu(256, 1, 1, 0);
        b.resize_bilinear(2);
        b.residual_add();
        b.conv_bn_relu(256, 3, 1, 1);
    }
    ssd_head(&mut b, 2, 110);
    b.finish()
}

/// SSD_MobileNet_v1_PPN (pooled pyramid variant, tiny graph).
pub fn ssd_mobilenet_v1_ppn(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 300, 300);
    mobilenet_v1_backbone(&mut b, 1.0);
    for _ in 0..2 {
        b.maxpool(2, 2);
        let c = b.channels();
        let (h, w) = b.spatial();
        b.conv(6 * 91, 1, 1, 0);
        b.set_shape(c, h, w);
    }
    decode_storm(&mut b, 100);
    b.finish()
}

/// SSD_MobileNet_v2.
pub fn ssd_mobilenet_v2(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 300, 300);
    mobilenet_v2_backbone(&mut b, 1.0);
    ssd_head(&mut b, 4, 110);
    b.finish()
}

/// SSD_Inception_v2.
pub fn ssd_inception_v2(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 300, 300);
    inception_v2_backbone(&mut b);
    ssd_head(&mut b, 4, 115);
    b.finish()
}

/// MLPerf_SSD_ResNet34_1200x1200.
pub fn ssd_resnet34(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 1200, 1200);
    resnet34_backbone(&mut b);
    ssd_head(&mut b, 4, 110);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    fn conv_share_of_layer_count(g: &LayerGraph) -> f64 {
        let convs = g.layers.iter().filter(|l| l.op.is_convolution()).count();
        convs as f64 / g.len() as f64
    }

    fn where_count(g: &LayerGraph) -> usize {
        g.layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::Where))
            .count()
    }

    #[test]
    fn detection_models_are_where_heavy() {
        for (name, g) in [
            ("frcnn_r101", faster_rcnn_resnet101(1)),
            ("frcnn_r50", faster_rcnn_resnet50(1)),
            ("frcnn_iv2", faster_rcnn_inception_v2(1)),
            ("ssd_mb1", ssd_mobilenet_v1(1, 115)),
            ("ssd_mb2", ssd_mobilenet_v2(1)),
            ("ssd_iv2", ssd_inception_v2(1)),
            ("ssd_r34", ssd_resnet34(1)),
        ] {
            assert!(
                where_count(&g) >= 50,
                "{name}: only {} Where ops",
                where_count(&g)
            );
        }
    }

    #[test]
    fn nas_variant_is_conv_dominated() {
        let nas = faster_rcnn_nas(1);
        let iv2 = faster_rcnn_inception_v2(1);
        assert!(
            conv_share_of_layer_count(&nas) > conv_share_of_layer_count(&iv2),
            "NAS must be structurally more convolutional"
        );
    }

    #[test]
    fn nas_has_most_conv_flops() {
        let flops = |g: &LayerGraph| -> u64 {
            g.layers
                .iter()
                .filter_map(|l| match &l.op {
                    LayerOp::Conv2D(p) | LayerOp::DepthwiseConv2dNative(p) => {
                        Some(p.direct_flops())
                    }
                    _ => None,
                })
                .sum()
        };
        let nas = flops(&faster_rcnn_nas(1));
        let r101 = flops(&faster_rcnn_resnet101(1));
        let ssd = flops(&ssd_mobilenet_v1(1, 115));
        assert!(nas > r101, "NAS {nas} vs R101 {r101}");
        assert!(r101 > ssd * 5, "R101 {r101} vs SSD {ssd}");
    }

    #[test]
    fn all_detection_graphs_build_at_batch_8() {
        for g in [
            faster_rcnn_resnet101(8),
            faster_rcnn_resnet50(8),
            faster_rcnn_inception_v2(8),
            faster_rcnn_nas(8),
            ssd_mobilenet_v1(8, 115),
            ssd_mobilenet_v1_fpn(8),
            ssd_mobilenet_v1_ppn(8),
            ssd_mobilenet_v2(8),
            ssd_inception_v2(8),
            ssd_resnet34(8),
        ] {
            assert!(g.len() > 50);
            assert_eq!(g.batch(), 8);
        }
    }

    #[test]
    fn every_head_ends_with_nms_present() {
        let g = ssd_mobilenet_v1(1, 115);
        assert!(g
            .layers
            .iter()
            .any(|l| matches!(l.op, LayerOp::NonMaxSuppression)));
    }
}
