//! # xsp-models — the model zoo
//!
//! Layer-graph builders for the 65 models the paper evaluates: 55
//! TensorFlow models drawn from MLPerf Inference, AI-Matrix and the
//! TensorFlow Slim / Detection / DeepLab zoos (Table VIII), plus the 10
//! MXNet Gluon counterparts (Table X) — and an extension tier of
//! GEMM-bound transformer models ([`transformer`]: BERT-Base/Large with
//! MLPerf-style SQuAD heads, a GPT-2 small decoder) registered under
//! [`zoo::Task::LanguageModeling`].
//!
//! Each builder is an architecture definition: given a batch size it emits
//! the static [`xsp_framework::LayerGraph`] (shapes, channels, kernel
//! sizes), from which the dnn substrate derives flops, DRAM traffic and
//! kernel launches analytically. Published top-1 accuracy and frozen-graph
//! sizes are embedded as metadata so Table VIII can be regenerated.
//!
//! Graphs are faithful at the level the paper's analyses consume: layer
//! counts and types, channel/spatial progressions, convolution share,
//! residual/concat structure, detection-head `Where`/NMS load. They are not
//! weight-level replicas.

#![warn(missing_docs)]

pub mod alexnet;
pub mod builder;
pub mod densenet;
pub mod detection;
pub mod inception;
pub mod mobilenet;
pub mod resnet;
pub mod segmentation;
pub mod srgan;
pub mod transformer;
pub mod vgg;
pub mod zoo;

pub use builder::{GraphBuilder, SeqBuilder};
pub use zoo::{
    all_models, language_models, mxnet_models, tensorflow_models, AccuracyMetric, ModelEntry, Task,
};
