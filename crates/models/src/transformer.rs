//! Transformer models: BERT-Base/Large encoders (MLPerf Inference
//! BERT-style, SQuAD span-prediction head) and a small GPT-2-style decoder.
//!
//! These open the GEMM-bound tier of the zoo: unlike the 65 CNN models,
//! whose GPU time is dominated by cuDNN convolution kernels, a transformer's
//! time goes to cuBLAS GEMMs — the large compute-bound QKV/output/FFN
//! projections and the small bandwidth-lean batched `Q·Kᵀ`/`scores·V`
//! products (see `xsp_dnn::attention` for the kernel-level regime
//! argument). Graphs are parameterized by batch *and* sequence length; the
//! zoo registry pins the sequence length per entry (384 for the SQuAD
//! BERTs, 256 for the GPT-2 decoder) since zoo builders take batch only.
//!
//! Like the CNN builders, these are faithful at the level the analyses
//! consume: op sequence, tensor shapes, head/layer counts, parameter
//! footprint — not weight-level replicas.

use crate::builder::SeqBuilder;
use xsp_framework::LayerGraph;

/// Architecture hyper-parameters of an encoder/decoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Encoder/decoder blocks.
    pub layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Feed-forward inner dimension (4·d_model for the classic stacks).
    pub d_ff: usize,
    /// Vocabulary size of the embedding table.
    pub vocab: usize,
}

impl TransformerConfig {
    /// BERT-Base: 12 layers, 12 heads, 768 hidden, WordPiece-30522 vocab.
    pub fn bert_base() -> Self {
        Self {
            layers: 12,
            heads: 12,
            d_model: 768,
            d_ff: 3072,
            vocab: 30522,
        }
    }

    /// BERT-Large: 24 layers, 16 heads, 1024 hidden.
    pub fn bert_large() -> Self {
        Self {
            layers: 24,
            heads: 16,
            d_model: 1024,
            d_ff: 4096,
            vocab: 30522,
        }
    }

    /// GPT-2 small: 12 layers, 12 heads, 768 hidden, BPE-50257 vocab.
    pub fn gpt2_small() -> Self {
        Self {
            layers: 12,
            heads: 12,
            d_model: 768,
            d_ff: 3072,
            vocab: 50257,
        }
    }
}

/// Emits one post-LN encoder/decoder block (the BERT/GPT-2 inference
/// ordering at the op granularity the layer profiler sees): attention chain,
/// residual + LayerNorm, feed-forward with GELU, residual + LayerNorm.
fn block(b: &mut SeqBuilder, index: usize, cfg: &TransformerConfig) {
    b.scoped(format!("layer_{index}"));
    b.attention(cfg.heads);
    b.residual_add("attention/output/add")
        .layer_norm("attention/output/LayerNorm");
    b.linear("intermediate/dense/MatMul", cfg.d_ff).gelu();
    b.linear("output/dense/MatMul", cfg.d_model);
    b.residual_add("output/add").layer_norm("output/LayerNorm");
}

/// Builds an encoder stack with a task head appended by `head`.
fn stack(
    batch: usize,
    seq: usize,
    cfg: TransformerConfig,
    head: impl FnOnce(&mut SeqBuilder),
) -> LayerGraph {
    assert!(batch > 0 && seq > 0, "degenerate transformer shape");
    let mut b = SeqBuilder::new(batch, seq);
    b.embed(cfg.vocab, cfg.d_model);
    b.layer_norm("embeddings/LayerNorm");
    for i in 0..cfg.layers {
        block(&mut b, i, &cfg);
    }
    b.scoped("");
    head(&mut b);
    b.finish()
}

/// BERT-Base with the SQuAD span-prediction head (start/end logits per
/// token) at `(batch, seq)` — the MLPerf Inference BERT workload shape.
pub fn bert_base(batch: usize, seq: usize) -> LayerGraph {
    stack(batch, seq, TransformerConfig::bert_base(), |b| {
        b.linear("squad/logits/MatMul", 2);
    })
}

/// BERT-Large with the SQuAD span-prediction head.
pub fn bert_large(batch: usize, seq: usize) -> LayerGraph {
    stack(batch, seq, TransformerConfig::bert_large(), |b| {
        b.linear("squad/logits/MatMul", 2);
    })
}

/// GPT-2 small decoder with the full language-model head: the final
/// `d_model → vocab` projection is the single largest GEMM in the zoo. The
/// frozen-graph representation is untied (the LM head duplicates the
/// embedding table, as a TF1 freeze of the shared variable does), which the
/// registry's graph-size metadata reflects.
pub fn gpt2_small(batch: usize, seq: usize) -> LayerGraph {
    let cfg = TransformerConfig::gpt2_small();
    let vocab = cfg.vocab;
    stack(batch, seq, cfg, |b| {
        b.linear("lm_head/MatMul", vocab);
        b.softmax("lm_head/Softmax");
    })
}

/// Which lowering the decode attention chain uses; see
/// [`xsp_dnn::decode`] for the kernel-level counterfactual argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeAttention {
    /// Materialized scores → softmax → context chain against the cache.
    #[default]
    Materialized,
    /// FlashAttention-style fused single kernel, score row never
    /// materialized.
    Fused,
}

/// Emits one decode-step block: the KV-cache attention chain at seq=1,
/// residual + LayerNorm, and the feed-forward pair lowered to
/// weight-streaming decode GEMVs.
fn decode_block(
    b: &mut SeqBuilder,
    index: usize,
    cfg: &TransformerConfig,
    cache_len: usize,
    path: DecodeAttention,
) {
    b.scoped(format!("layer_{index}"));
    b.decode_attention(cfg.heads, cache_len, path == DecodeAttention::Fused);
    b.residual_add("attention/output/add")
        .layer_norm("attention/output/LayerNorm");
    b.decode_linear("intermediate/dense/DecodeMatMul", cfg.d_ff)
        .gelu();
    b.decode_linear("output/dense/DecodeMatMul", cfg.d_model);
    b.residual_add("output/add").layer_norm("output/LayerNorm");
}

/// Builds one autoregressive decode step of a `cfg` stack: `batch` requests
/// each evaluate a single new token against `cache_len` cached context
/// tokens (including the new one). This is the serving tier's unit of work
/// — the continuous-batching scheduler profiles one such graph per step —
/// and the bandwidth-bound third compute regime: every dense product is a
/// weight/cache-streaming GEMV.
pub fn decode_step(
    batch: usize,
    cache_len: usize,
    cfg: TransformerConfig,
    path: DecodeAttention,
    head: impl FnOnce(&mut SeqBuilder),
) -> LayerGraph {
    assert!(batch > 0 && cache_len > 0, "degenerate decode shape");
    let mut b = SeqBuilder::new(batch, 1);
    b.embed(cfg.vocab, cfg.d_model);
    b.layer_norm("embeddings/LayerNorm");
    for i in 0..cfg.layers {
        decode_block(&mut b, i, &cfg, cache_len, path);
    }
    b.scoped("");
    head(&mut b);
    b.finish()
}

/// One GPT-2 small decode step at `(batch, cache_len)`, with the LM head
/// as a vocab-wide decode GEMV (at batch 1 that projection alone streams
/// ~154 MB of weights — the honest reason decode is bandwidth-bound).
pub fn gpt2_decode_step(batch: usize, cache_len: usize, path: DecodeAttention) -> LayerGraph {
    let cfg = TransformerConfig::gpt2_small();
    let vocab = cfg.vocab;
    decode_step(batch, cache_len, cfg, path, |b| {
        b.decode_linear("lm_head/DecodeMatMul", vocab);
        b.softmax("lm_head/Softmax");
    })
}

/// One BERT-Base decode step (incremental SQuAD-style scoring of one
/// appended token against cached context).
pub fn bert_base_decode_step(batch: usize, cache_len: usize, path: DecodeAttention) -> LayerGraph {
    decode_step(
        batch,
        cache_len,
        TransformerConfig::bert_base(),
        path,
        |b| {
            b.decode_linear("squad/logits/DecodeMatMul", 2);
        },
    )
}

/// One BERT-Large decode step.
pub fn bert_large_decode_step(batch: usize, cache_len: usize, path: DecodeAttention) -> LayerGraph {
    decode_step(
        batch,
        cache_len,
        TransformerConfig::bert_large(),
        path,
        |b| {
            b.decode_linear("squad/logits/DecodeMatMul", 2);
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    fn count(g: &LayerGraph, pred: impl Fn(&LayerOp) -> bool) -> usize {
        g.layers.iter().filter(|l| pred(&l.op)).count()
    }

    #[test]
    fn bert_base_block_structure() {
        let g = bert_base(1, 128);
        // 12 blocks x one attention chain
        assert_eq!(count(&g, |op| matches!(op, LayerOp::QkvProjection(_))), 12);
        assert_eq!(
            count(&g, |op| matches!(op, LayerOp::AttentionScores(_))),
            12
        );
        // 2 LayerNorms per block + 1 embedding LayerNorm
        assert_eq!(count(&g, |op| matches!(op, LayerOp::LayerNorm)), 25);
        // 2 FFN MatMuls per block + SQuAD head
        assert_eq!(count(&g, |op| matches!(op, LayerOp::MatMul { .. })), 25);
        assert_eq!(count(&g, |op| matches!(op, LayerOp::Gelu)), 12);
        assert_eq!(g.batch(), 1);
        assert_eq!(g.layers[0].op.type_name(), "Data");
    }

    #[test]
    fn bert_large_doubles_depth() {
        let small = bert_base(1, 64);
        let large = bert_large(1, 64);
        assert_eq!(
            count(&large, |op| matches!(op, LayerOp::QkvProjection(_))),
            24
        );
        assert!(large.len() > small.len());
    }

    #[test]
    fn parameter_footprints_match_published_sizes() {
        // fp32 frozen graphs: BERT-Base ≈ 436 MB (109M params), BERT-Large
        // ≈ 1335 MB (334M), GPT-2 small untied ≈ 651 MB.
        let mb = |g: &LayerGraph| g.weights_mb();
        let base = mb(&bert_base(1, 384));
        assert!((base - 436.0).abs() / 436.0 < 0.05, "BERT-Base {base} MB");
        let large = mb(&bert_large(1, 384));
        assert!(
            (large - 1335.0).abs() / 1335.0 < 0.05,
            "BERT-Large {large} MB"
        );
        let gpt = mb(&gpt2_small(1, 256));
        assert!((gpt - 651.0).abs() / 651.0 < 0.05, "GPT-2 {gpt} MB");
    }

    #[test]
    fn weights_are_seq_and_batch_invariant() {
        // parameter footprint must not depend on the activation shape
        assert_eq!(
            bert_base(1, 128).weights_mb(),
            bert_base(8, 384).weights_mb()
        );
    }

    #[test]
    fn gemm_flops_dominate() {
        // The GEMM-bound signature at the graph level: attention + FFN
        // GEMMs carry virtually all the flops.
        let g = bert_base(1, 384);
        let gemm_layers = count(&g, |op| op.is_gemm());
        // 12 blocks x (qkv + scores + context + output + 2 ffn) + head
        assert_eq!(gemm_layers, 12 * 6 + 1);
    }

    #[test]
    fn gpt2_head_projects_to_vocab() {
        let g = gpt2_small(2, 32);
        let head = g
            .layers
            .iter()
            .find(|l| l.name == "lm_head/MatMul")
            .unwrap();
        assert_eq!(head.out_shape.0, vec![2, 32, 50257]);
        assert_eq!(g.layers.last().unwrap().op.type_name(), "Softmax");
    }

    #[test]
    #[should_panic(expected = "degenerate transformer")]
    fn zero_seq_rejected() {
        bert_base(1, 0);
    }

    #[test]
    fn decode_step_structure() {
        let g = gpt2_decode_step(4, 256, DecodeAttention::Materialized);
        assert_eq!(
            count(&g, |op| matches!(op, LayerOp::DecodeQkvProjection(_))),
            12
        );
        assert_eq!(count(&g, |op| matches!(op, LayerOp::KvCacheAppend(_))), 12);
        assert_eq!(
            count(&g, |op| matches!(op, LayerOp::DecodeAttentionScores(_))),
            12
        );
        // 2 FFN + LM head decode GEMVs
        assert_eq!(
            count(&g, |op| matches!(op, LayerOp::DecodeLinear { .. })),
            12 * 2 + 1
        );
        // no prefill-shaped ops anywhere in a decode step
        assert_eq!(count(&g, |op| matches!(op, LayerOp::MatMul { .. })), 0);
        assert_eq!(count(&g, |op| matches!(op, LayerOp::QkvProjection(_))), 0);
        assert_eq!(g.batch(), 4);
    }

    #[test]
    fn fused_path_replaces_score_chain_with_one_op() {
        let m = gpt2_decode_step(2, 128, DecodeAttention::Materialized);
        let f = gpt2_decode_step(2, 128, DecodeAttention::Fused);
        assert_eq!(
            count(&f, |op| matches!(op, LayerOp::FlashDecodeAttention(_))),
            12
        );
        assert_eq!(
            count(&f, |op| matches!(op, LayerOp::DecodeAttentionScores(_))),
            0
        );
        // fused collapses 3 ops into 1 per block
        assert_eq!(m.len() - f.len(), 12 * 2);
    }

    #[test]
    fn decode_step_carries_full_weights() {
        // A decode step touches every parameter the prefill graph does —
        // same footprint, streamed per step.
        let prefill = gpt2_small(1, 256).weights_mb();
        let decode = gpt2_decode_step(1, 256, DecodeAttention::Materialized).weights_mb();
        assert!(
            (prefill - decode).abs() / prefill < 0.01,
            "prefill {prefill} vs decode {decode}"
        );
    }

    #[test]
    fn decode_weights_are_cache_invariant() {
        assert_eq!(
            gpt2_decode_step(1, 64, DecodeAttention::Materialized).weights_mb(),
            gpt2_decode_step(8, 2048, DecodeAttention::Materialized).weights_mb()
        );
    }

    #[test]
    #[should_panic(expected = "degenerate decode")]
    fn zero_cache_rejected() {
        gpt2_decode_step(1, 0, DecodeAttention::Materialized);
    }
}
