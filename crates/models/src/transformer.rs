//! Transformer models: BERT-Base/Large encoders (MLPerf Inference
//! BERT-style, SQuAD span-prediction head) and a small GPT-2-style decoder.
//!
//! These open the GEMM-bound tier of the zoo: unlike the 65 CNN models,
//! whose GPU time is dominated by cuDNN convolution kernels, a transformer's
//! time goes to cuBLAS GEMMs — the large compute-bound QKV/output/FFN
//! projections and the small bandwidth-lean batched `Q·Kᵀ`/`scores·V`
//! products (see `xsp_dnn::attention` for the kernel-level regime
//! argument). Graphs are parameterized by batch *and* sequence length; the
//! zoo registry pins the sequence length per entry (384 for the SQuAD
//! BERTs, 256 for the GPT-2 decoder) since zoo builders take batch only.
//!
//! Like the CNN builders, these are faithful at the level the analyses
//! consume: op sequence, tensor shapes, head/layer counts, parameter
//! footprint — not weight-level replicas.

use crate::builder::SeqBuilder;
use xsp_framework::LayerGraph;

/// Architecture hyper-parameters of an encoder/decoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Encoder/decoder blocks.
    pub layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Feed-forward inner dimension (4·d_model for the classic stacks).
    pub d_ff: usize,
    /// Vocabulary size of the embedding table.
    pub vocab: usize,
}

impl TransformerConfig {
    /// BERT-Base: 12 layers, 12 heads, 768 hidden, WordPiece-30522 vocab.
    pub fn bert_base() -> Self {
        Self {
            layers: 12,
            heads: 12,
            d_model: 768,
            d_ff: 3072,
            vocab: 30522,
        }
    }

    /// BERT-Large: 24 layers, 16 heads, 1024 hidden.
    pub fn bert_large() -> Self {
        Self {
            layers: 24,
            heads: 16,
            d_model: 1024,
            d_ff: 4096,
            vocab: 30522,
        }
    }

    /// GPT-2 small: 12 layers, 12 heads, 768 hidden, BPE-50257 vocab.
    pub fn gpt2_small() -> Self {
        Self {
            layers: 12,
            heads: 12,
            d_model: 768,
            d_ff: 3072,
            vocab: 50257,
        }
    }
}

/// Emits one post-LN encoder/decoder block (the BERT/GPT-2 inference
/// ordering at the op granularity the layer profiler sees): attention chain,
/// residual + LayerNorm, feed-forward with GELU, residual + LayerNorm.
fn block(b: &mut SeqBuilder, index: usize, cfg: &TransformerConfig) {
    b.scoped(format!("layer_{index}"));
    b.attention(cfg.heads);
    b.residual_add("attention/output/add")
        .layer_norm("attention/output/LayerNorm");
    b.linear("intermediate/dense/MatMul", cfg.d_ff).gelu();
    b.linear("output/dense/MatMul", cfg.d_model);
    b.residual_add("output/add").layer_norm("output/LayerNorm");
}

/// Builds an encoder stack with a task head appended by `head`.
fn stack(
    batch: usize,
    seq: usize,
    cfg: TransformerConfig,
    head: impl FnOnce(&mut SeqBuilder),
) -> LayerGraph {
    assert!(batch > 0 && seq > 0, "degenerate transformer shape");
    let mut b = SeqBuilder::new(batch, seq);
    b.embed(cfg.vocab, cfg.d_model);
    b.layer_norm("embeddings/LayerNorm");
    for i in 0..cfg.layers {
        block(&mut b, i, &cfg);
    }
    b.scoped("");
    head(&mut b);
    b.finish()
}

/// BERT-Base with the SQuAD span-prediction head (start/end logits per
/// token) at `(batch, seq)` — the MLPerf Inference BERT workload shape.
pub fn bert_base(batch: usize, seq: usize) -> LayerGraph {
    stack(batch, seq, TransformerConfig::bert_base(), |b| {
        b.linear("squad/logits/MatMul", 2);
    })
}

/// BERT-Large with the SQuAD span-prediction head.
pub fn bert_large(batch: usize, seq: usize) -> LayerGraph {
    stack(batch, seq, TransformerConfig::bert_large(), |b| {
        b.linear("squad/logits/MatMul", 2);
    })
}

/// GPT-2 small decoder with the full language-model head: the final
/// `d_model → vocab` projection is the single largest GEMM in the zoo. The
/// frozen-graph representation is untied (the LM head duplicates the
/// embedding table, as a TF1 freeze of the shared variable does), which the
/// registry's graph-size metadata reflects.
pub fn gpt2_small(batch: usize, seq: usize) -> LayerGraph {
    let cfg = TransformerConfig::gpt2_small();
    let vocab = cfg.vocab;
    stack(batch, seq, cfg, |b| {
        b.linear("lm_head/MatMul", vocab);
        b.softmax("lm_head/Softmax");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    fn count(g: &LayerGraph, pred: impl Fn(&LayerOp) -> bool) -> usize {
        g.layers.iter().filter(|l| pred(&l.op)).count()
    }

    #[test]
    fn bert_base_block_structure() {
        let g = bert_base(1, 128);
        // 12 blocks x one attention chain
        assert_eq!(count(&g, |op| matches!(op, LayerOp::QkvProjection(_))), 12);
        assert_eq!(
            count(&g, |op| matches!(op, LayerOp::AttentionScores(_))),
            12
        );
        // 2 LayerNorms per block + 1 embedding LayerNorm
        assert_eq!(count(&g, |op| matches!(op, LayerOp::LayerNorm)), 25);
        // 2 FFN MatMuls per block + SQuAD head
        assert_eq!(count(&g, |op| matches!(op, LayerOp::MatMul { .. })), 25);
        assert_eq!(count(&g, |op| matches!(op, LayerOp::Gelu)), 12);
        assert_eq!(g.batch(), 1);
        assert_eq!(g.layers[0].op.type_name(), "Data");
    }

    #[test]
    fn bert_large_doubles_depth() {
        let small = bert_base(1, 64);
        let large = bert_large(1, 64);
        assert_eq!(
            count(&large, |op| matches!(op, LayerOp::QkvProjection(_))),
            24
        );
        assert!(large.len() > small.len());
    }

    #[test]
    fn parameter_footprints_match_published_sizes() {
        // fp32 frozen graphs: BERT-Base ≈ 436 MB (109M params), BERT-Large
        // ≈ 1335 MB (334M), GPT-2 small untied ≈ 651 MB.
        let mb = |g: &LayerGraph| g.weights_mb();
        let base = mb(&bert_base(1, 384));
        assert!((base - 436.0).abs() / 436.0 < 0.05, "BERT-Base {base} MB");
        let large = mb(&bert_large(1, 384));
        assert!(
            (large - 1335.0).abs() / 1335.0 < 0.05,
            "BERT-Large {large} MB"
        );
        let gpt = mb(&gpt2_small(1, 256));
        assert!((gpt - 651.0).abs() / 651.0 < 0.05, "GPT-2 {gpt} MB");
    }

    #[test]
    fn weights_are_seq_and_batch_invariant() {
        // parameter footprint must not depend on the activation shape
        assert_eq!(
            bert_base(1, 128).weights_mb(),
            bert_base(8, 384).weights_mb()
        );
    }

    #[test]
    fn gemm_flops_dominate() {
        // The GEMM-bound signature at the graph level: attention + FFN
        // GEMMs carry virtually all the flops.
        let g = bert_base(1, 384);
        let gemm_layers = count(&g, |op| op.is_gemm());
        // 12 blocks x (qkv + scores + context + output + 2 ffn) + head
        assert_eq!(gemm_layers, 12 * 6 + 1);
    }

    #[test]
    fn gpt2_head_projects_to_vocab() {
        let g = gpt2_small(2, 32);
        let head = g
            .layers
            .iter()
            .find(|l| l.name == "lm_head/MatMul")
            .unwrap();
        assert_eq!(head.out_shape.0, vec![2, 32, 50257]);
        assert_eq!(g.layers.last().unwrap().op.type_name(), "Softmax");
    }

    #[test]
    #[should_panic(expected = "degenerate transformer")]
    fn zero_seq_rejected() {
        bert_base(1, 0);
    }
}
