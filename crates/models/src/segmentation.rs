//! Instance segmentation (Mask R-CNN) and semantic segmentation
//! (DeepLabv3) models — Table VIII models 48–54.
//!
//! Mask R-CNN = Faster R-CNN + a mask head; its conv share sits between the
//! detection and classification families (29–42 % in Table VIII).
//! DeepLabv3's latency "is affected by both the convolution layers and the
//! memory-bound layers (such as Transpose, Add, and Mul)" (§IV-A); its
//! optimal batch size is 1.

use crate::builder::GraphBuilder;
use crate::inception::{inception_resnet_v2_backbone, inception_v2_backbone};
use crate::mobilenet::mobilenet_v2_backbone;
use crate::resnet::{resnet_backbone, ResNetVersion};
use xsp_framework::LayerGraph;

/// Proposal storm shared with the detection heads.
fn decode_storm(b: &mut GraphBuilder, count: usize) {
    let c = b.channels();
    let (h, w) = b.spatial();
    b.set_shape(4, (h * w / 16).max(1), 16);
    for i in 0..count {
        b.where_op();
        if i % 3 == 0 {
            b.reshape(4, (h * w / 16).max(1), 16);
        }
    }
    b.nms();
    b.set_shape(c, h, w);
}

/// Mask R-CNN: backbone → RPN → storm → crops → box head + mask head.
fn mask_rcnn(
    mut b: GraphBuilder,
    backbone: impl FnOnce(&mut GraphBuilder),
    head_c: usize,
    storm: usize,
) -> LayerGraph {
    backbone(&mut b);
    // RPN
    let c = b.channels();
    let (h, w) = b.spatial();
    b.conv(512, 3, 1, 1).bias_add().relu();
    b.conv(24, 1, 1, 0);
    b.set_shape(c, h, w);
    decode_storm(&mut b, storm / 2);
    // ROI crops for the box head (≈64 proposals at 7×7 ⇒ 56×56 equivalent)
    b.crop_and_resize(64, 56, 56);
    b.set_shape(head_c, 56, 56);
    for _ in 0..3 {
        b.conv_bn_relu(head_c / 2, 1, 1, 0);
        b.conv_bn_relu(head_c / 2, 3, 1, 1);
        b.conv_bn_relu(head_c, 1, 1, 0);
    }
    // mask head: 4 conv3x3(256) + deconv over ≈100 proposals at 14×14
    // (fold into a 140×140-equivalent tensor)
    b.set_shape(256, 140, 140);
    for _ in 0..4 {
        b.conv_bn_relu(256, 3, 1, 1);
    }
    b.resize_bilinear(2);
    b.conv(91, 1, 1, 0);
    b.sigmoid();
    decode_storm(&mut b, storm / 2);
    b.finish()
}

/// Mask_RCNN_Inception_ResNet_v2 (the heaviest IS model).
pub fn mask_rcnn_inception_resnet_v2(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 800, 800);
    let backbone = |b: &mut GraphBuilder| inception_resnet_v2_backbone(b);
    mask_rcnn(
        {
            backbone(&mut b);
            b
        },
        |_| {},
        1088,
        160,
    )
}

/// Mask_RCNN_ResNet101_v2.
pub fn mask_rcnn_resnet101_v2(batch: usize) -> LayerGraph {
    let b = GraphBuilder::new(batch, 3, 800, 800);
    mask_rcnn(b, |b| resnet_backbone(b, 101, ResNetVersion::V2), 1024, 150)
}

/// Mask_RCNN_ResNet50_v2.
pub fn mask_rcnn_resnet50_v2(batch: usize) -> LayerGraph {
    let b = GraphBuilder::new(batch, 3, 800, 800);
    mask_rcnn(b, |b| resnet_backbone(b, 50, ResNetVersion::V2), 1024, 150)
}

/// Mask_RCNN_Inception_v2 (Where-dominated like its detection sibling).
pub fn mask_rcnn_inception_v2(batch: usize) -> LayerGraph {
    let b = GraphBuilder::new(batch, 3, 512, 512);
    mask_rcnn(b, inception_v2_backbone, 576, 260)
}

/// Atrous spatial pyramid pooling: parallel atrous convs + image pooling,
/// concatenated — DeepLab's signature block.
fn aspp(b: &mut GraphBuilder, out_c: usize) {
    let input = (b.channels(), b.spatial().0, b.spatial().1);
    let branches = 4usize;
    for rate in 0..branches {
        b.set_shape(input.0, input.1, input.2);
        if rate == 0 {
            b.conv_bn_relu(out_c, 1, 1, 0);
        } else {
            b.conv_bn_relu(out_c, 3, 1, 1); // atrous: same cost profile
        }
    }
    // image-level pooling branch
    b.set_shape(input.0, input.1, input.2);
    b.global_pool();
    b.conv_bn_relu(out_c, 1, 1, 0);
    b.set_shape(out_c, input.1, input.2);
    b.resize_bilinear(1);
    b.concat(out_c * (branches + 1));
    b.conv_bn_relu(out_c, 1, 1, 0);
}

/// DeepLabv3 with an Xception-65 backbone at 513×513.
pub fn deeplabv3_xception65(batch: usize) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 513, 513);
    // entry flow
    b.conv_bn_relu(32, 3, 2, 1);
    b.conv_bn_relu(64, 3, 1, 1);
    for c in [128usize, 256, 728] {
        let in_c = b.channels();
        let (h, w) = b.spatial();
        b.conv(c, 1, 2, 0).bn();
        b.set_shape(in_c, h, w);
        for _ in 0..2 {
            b.dwconv(3, 1, 1).bn();
            b.conv_bn_relu(c, 1, 1, 0);
        }
        b.dwconv(3, 2, 1).bn();
        b.conv(c, 1, 1, 0).bn();
        b.residual_add();
    }
    // middle flow: 16 blocks of 3 separable convs
    for _ in 0..16 {
        for _ in 0..3 {
            b.dwconv(3, 1, 1).bn().relu();
            b.conv_bn_relu(728, 1, 1, 0);
        }
        b.residual_add();
    }
    // exit flow
    b.dwconv(3, 1, 1).bn().relu();
    b.conv_bn_relu(1024, 1, 1, 0);
    b.dwconv(3, 1, 1).bn().relu();
    b.conv_bn_relu(1536, 1, 1, 0);
    b.dwconv(3, 1, 1).bn().relu();
    b.conv_bn_relu(2048, 1, 1, 0);
    aspp(&mut b, 256);
    // decoder: upsample to full resolution
    b.conv(21, 1, 1, 0);
    b.resize_bilinear(4);
    b.resize_bilinear(4);
    b.softmax();
    b.finish()
}

/// DeepLabv3 with a MobileNet v2 backbone (`dm` = depth multiplier).
pub fn deeplabv3_mobilenet_v2(batch: usize, dm: f64) -> LayerGraph {
    let mut b = GraphBuilder::new(batch, 3, 513, 513);
    mobilenet_v2_backbone(&mut b, dm);
    aspp(&mut b, 256);
    b.conv(21, 1, 1, 0);
    b.resize_bilinear(4);
    b.resize_bilinear(4);
    b.softmax();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsp_framework::LayerOp;

    #[test]
    fn mask_rcnn_variants_build() {
        for g in [
            mask_rcnn_inception_resnet_v2(1),
            mask_rcnn_resnet101_v2(1),
            mask_rcnn_resnet50_v2(1),
            mask_rcnn_inception_v2(1),
        ] {
            assert!(g.len() > 100);
            assert!(g.layers.iter().any(|l| matches!(l.op, LayerOp::Where)));
            assert!(
                g.layers.iter().any(|l| matches!(l.op, LayerOp::Sigmoid)),
                "mask head present"
            );
        }
    }

    #[test]
    fn mask_rcnn_resnet101_deeper_than_50() {
        assert!(mask_rcnn_resnet101_v2(1).len() > mask_rcnn_resnet50_v2(1).len());
    }

    #[test]
    fn deeplab_has_resize_layers() {
        let g = deeplabv3_xception65(1);
        let resizes = g
            .layers
            .iter()
            .filter(|l| matches!(l.op, LayerOp::ResizeBilinear))
            .count();
        assert!(resizes >= 3, "ASPP pooling + decoder upsampling");
    }

    #[test]
    fn deeplab_mobilenet_is_much_smaller() {
        let x = deeplabv3_xception65(1);
        let m = deeplabv3_mobilenet_v2(1, 1.0);
        let flops = |g: &LayerGraph| -> u64 {
            g.layers
                .iter()
                .filter_map(|l| match &l.op {
                    LayerOp::Conv2D(p) | LayerOp::DepthwiseConv2dNative(p) => {
                        Some(p.direct_flops())
                    }
                    _ => None,
                })
                .sum()
        };
        assert!(flops(&x) > flops(&m) * 5);
    }

    #[test]
    fn dm05_halves_depth() {
        let full = deeplabv3_mobilenet_v2(1, 1.0);
        let half = deeplabv3_mobilenet_v2(1, 0.5);
        let widest = |g: &LayerGraph| {
            g.layers
                .iter()
                .filter_map(|l| l.out_shape.0.get(1).copied())
                .max()
                .unwrap()
        };
        assert!(widest(&half) <= widest(&full));
    }

    #[test]
    fn mask_rcnn_inception_v2_is_wherest() {
        let count = |g: &LayerGraph| {
            g.layers
                .iter()
                .filter(|l| matches!(l.op, LayerOp::Where))
                .count()
        };
        assert!(count(&mask_rcnn_inception_v2(1)) > count(&mask_rcnn_resnet50_v2(1)));
    }
}
