//! Shape-tracking graph builders shared by every architecture definition:
//! [`GraphBuilder`] for NCHW image models, [`SeqBuilder`] for
//! (batch, seq, features) token-sequence models (transformers).

use xsp_dnn::{AttentionParams, ConvParams, DecodeParams};
use xsp_framework::{Layer, LayerGraph, LayerOp, TensorShape};

/// Builds a [`LayerGraph`] while tracking the current NCHW tensor shape and
/// assigning TensorFlow-style layer names (`conv2d_48/Conv2D`).
#[derive(Debug)]
pub struct GraphBuilder {
    graph: LayerGraph,
    batch: usize,
    c: usize,
    h: usize,
    w: usize,
    conv_n: usize,
    dw_n: usize,
    bn_n: usize,
    relu_n: usize,
    add_n: usize,
    mul_n: usize,
    pool_n: usize,
    fc_n: usize,
    misc_n: usize,
}

impl GraphBuilder {
    /// Starts a graph with a `Data` layer of shape `(batch, c, h, w)`.
    pub fn new(batch: usize, c: usize, h: usize, w: usize) -> Self {
        let mut graph = LayerGraph::default();
        graph.push(Layer::new(
            "data",
            LayerOp::Data,
            TensorShape::nchw(batch, c, h, w),
        ));
        Self {
            graph,
            batch,
            c,
            h,
            w,
            conv_n: 0,
            dw_n: 0,
            bn_n: 0,
            relu_n: 0,
            add_n: 0,
            mul_n: 0,
            pool_n: 0,
            fc_n: 0,
            misc_n: 0,
        }
    }

    /// Current channel count.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Current spatial extent `(h, w)`.
    pub fn spatial(&self) -> (usize, usize) {
        (self.h, self.w)
    }

    /// The batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    fn shape(&self) -> TensorShape {
        TensorShape::nchw(self.batch, self.c, self.h, self.w)
    }

    fn push(&mut self, name: String, op: LayerOp, shape: TensorShape) {
        self.graph.push(Layer::new(name, op, shape));
    }

    /// 2-D convolution (`same`-style padding unless `pad` says otherwise).
    pub fn conv(&mut self, out_c: usize, k: usize, stride: usize, pad: usize) -> &mut Self {
        let p = ConvParams {
            batch: self.batch,
            in_c: self.c,
            in_h: self.h,
            in_w: self.w,
            out_c,
            kernel_h: k,
            kernel_w: k,
            stride,
            pad,
        };
        self.c = out_c;
        self.h = p.out_h();
        self.w = p.out_w();
        let name = if self.conv_n == 0 {
            "conv2d/Conv2D".to_owned()
        } else {
            format!("conv2d_{}/Conv2D", self.conv_n)
        };
        self.conv_n += 1;
        let shape = self.shape();
        self.push(name, LayerOp::Conv2D(p), shape);
        self
    }

    /// Depthwise 3×3-style convolution (channel count preserved).
    pub fn dwconv(&mut self, k: usize, stride: usize, pad: usize) -> &mut Self {
        let p = ConvParams {
            batch: self.batch,
            in_c: self.c,
            in_h: self.h,
            in_w: self.w,
            out_c: self.c,
            kernel_h: k,
            kernel_w: k,
            stride,
            pad,
        };
        self.h = p.out_h();
        self.w = p.out_w();
        self.dw_n += 1;
        let name = format!("depthwise_{}/depthwise", self.dw_n);
        let shape = self.shape();
        self.push(name, LayerOp::DepthwiseConv2dNative(p), shape);
        self
    }

    /// Batch normalization (decomposed by TF at run time).
    pub fn bn(&mut self) -> &mut Self {
        self.bn_n += 1;
        let name = format!("batch_normalization_{}/FusedBatchNorm", self.bn_n);
        let shape = self.shape();
        self.push(name, LayerOp::FusedBatchNorm, shape);
        self
    }

    /// Relu activation.
    pub fn relu(&mut self) -> &mut Self {
        self.relu_n += 1;
        let name = format!("Relu_{}", self.relu_n);
        let shape = self.shape();
        self.push(name, LayerOp::Relu, shape);
        self
    }

    /// Relu6 activation (MobileNet).
    pub fn relu6(&mut self) -> &mut Self {
        self.relu_n += 1;
        let name = format!("Relu6_{}", self.relu_n);
        let shape = self.shape();
        self.push(name, LayerOp::Relu6, shape);
        self
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("Sigmoid_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Sigmoid, shape);
        self
    }

    /// Tanh activation.
    pub fn tanh(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("Tanh_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Tanh, shape);
        self
    }

    /// Convenience: conv → BN → Relu.
    pub fn conv_bn_relu(&mut self, out_c: usize, k: usize, stride: usize, pad: usize) -> &mut Self {
        self.conv(out_c, k, stride, pad).bn().relu()
    }

    /// Convenience: conv → BN → Relu6.
    pub fn conv_bn_relu6(
        &mut self,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        self.conv(out_c, k, stride, pad).bn().relu6()
    }

    /// Residual element-wise add (`AddN` with 2 operands).
    pub fn residual_add(&mut self) -> &mut Self {
        self.add_n += 1;
        let name = format!("add_{}", self.add_n);
        let shape = self.shape();
        self.push(name, LayerOp::AddN(2), shape);
        self
    }

    /// Broadcast multiply (used by attention/scale paths).
    pub fn mul(&mut self) -> &mut Self {
        self.mul_n += 1;
        let name = format!("mul_{}", self.mul_n);
        let shape = self.shape();
        self.push(name, LayerOp::Mul, shape);
        self
    }

    /// Channelwise bias add.
    pub fn bias_add(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("BiasAdd_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::BiasAdd, shape);
        self
    }

    /// Max pooling.
    pub fn maxpool(&mut self, window: usize, stride: usize) -> &mut Self {
        self.h = self.h.div_ceil(stride);
        self.w = self.w.div_ceil(stride);
        self.pool_n += 1;
        let name = format!("max_pooling2d_{}/MaxPool", self.pool_n);
        let shape = self.shape();
        self.push(name, LayerOp::MaxPool { window, stride }, shape);
        self
    }

    /// Average pooling.
    pub fn avgpool(&mut self, window: usize, stride: usize) -> &mut Self {
        self.h = self.h.div_ceil(stride);
        self.w = self.w.div_ceil(stride);
        self.pool_n += 1;
        let name = format!("average_pooling2d_{}/AvgPool", self.pool_n);
        let shape = self.shape();
        self.push(name, LayerOp::AvgPool { window, stride }, shape);
        self
    }

    /// Global average pooling (reduce-mean over H×W).
    pub fn global_pool(&mut self) -> &mut Self {
        self.h = 1;
        self.w = 1;
        self.misc_n += 1;
        let name = format!("Mean_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Mean, shape);
        self
    }

    /// Dense layer: flattens the current tensor into features.
    pub fn fc(&mut self, out_features: usize) -> &mut Self {
        let in_features = self.c * self.h * self.w;
        self.c = out_features;
        self.h = 1;
        self.w = 1;
        self.fc_n += 1;
        let name = format!("dense_{}/MatMul", self.fc_n);
        self.push(
            name,
            LayerOp::MatMul {
                in_features,
                out_features,
            },
            TensorShape::nf(self.batch, out_features),
        );
        self
    }

    /// Softmax over the current features.
    pub fn softmax(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("softmax_{}", self.misc_n);
        let features = self.c * self.h * self.w;
        self.push(
            name,
            LayerOp::Softmax,
            TensorShape::nf(self.batch, features),
        );
        self
    }

    /// Channel concatenation: sets the new channel count.
    pub fn concat(&mut self, total_c: usize) -> &mut Self {
        self.c = total_c;
        self.misc_n += 1;
        let name = format!("concat_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Concat, shape);
        self
    }

    /// Spatial zero-padding (shape bookkeeping only; adds a Pad layer).
    pub fn pad_layer(&mut self, pad: usize) -> &mut Self {
        self.h += 2 * pad;
        self.w += 2 * pad;
        self.misc_n += 1;
        let name = format!("Pad_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Pad, shape);
        self
    }

    /// Metadata-only reshape.
    pub fn reshape(&mut self, c: usize, h: usize, w: usize) -> &mut Self {
        self.c = c;
        self.h = h;
        self.w = w;
        self.misc_n += 1;
        let name = format!("Reshape_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Reshape, shape);
        self
    }

    /// Layout transpose.
    pub fn transpose(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("Transpose_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Transpose, shape);
        self
    }

    /// Conditional gather (`Where`) over roughly the current tensor.
    pub fn where_op(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("Where_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Where, shape);
        self
    }

    /// Non-maximum suppression.
    pub fn nms(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("NonMaxSuppression_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::NonMaxSuppression, shape);
        self
    }

    /// ROI crop-and-resize to `(h, w)` with `boxes` proposals per image.
    pub fn crop_and_resize(&mut self, boxes: usize, h: usize, w: usize) -> &mut Self {
        // proposals multiply the effective batch of downstream tensors;
        // fold into channels to keep NCHW bookkeeping single-tensor.
        self.h = h;
        self.w = w;
        self.misc_n += 1;
        let name = format!("CropAndResize_{}", self.misc_n);
        let shape = TensorShape(vec![self.batch, boxes * self.c / self.c.max(1), h, w]);
        let _ = boxes;
        self.push(name, LayerOp::CropAndResize, shape);
        self
    }

    /// Bilinear upsample by `factor`.
    pub fn resize_bilinear(&mut self, factor: usize) -> &mut Self {
        self.h *= factor;
        self.w *= factor;
        self.misc_n += 1;
        let name = format!("ResizeBilinear_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::ResizeBilinear, shape);
        self
    }

    /// Local response normalization.
    pub fn lrn(&mut self) -> &mut Self {
        self.misc_n += 1;
        let name = format!("LRN_{}", self.misc_n);
        let shape = self.shape();
        self.push(name, LayerOp::Lrn, shape);
        self
    }

    /// Overrides the tracked channel count (for branch bookkeeping in
    /// inception-style modules built sequentially).
    pub fn set_channels(&mut self, c: usize) -> &mut Self {
        self.c = c;
        self
    }

    /// Overrides the full tracked shape without emitting a layer — used to
    /// rewind to a branch point when building multi-path blocks (residual
    /// shortcuts, inception branches) sequentially.
    pub fn set_shape(&mut self, c: usize, h: usize, w: usize) -> &mut Self {
        self.c = c;
        self.h = h;
        self.w = w;
        self
    }

    /// Finishes the graph.
    pub fn finish(self) -> LayerGraph {
        self.graph
    }

    /// Number of layers so far.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether only the data layer exists so far.
    pub fn is_empty(&self) -> bool {
        self.graph.len() <= 1
    }
}

/// Builds a [`LayerGraph`] for token-sequence (transformer) models while
/// tracking the current `(batch, seq, features)` shape and assigning
/// TensorFlow-BERT-style scoped layer names
/// (`layer_3/attention/self/qkv/MatMul`).
#[derive(Debug)]
pub struct SeqBuilder {
    graph: LayerGraph,
    batch: usize,
    seq: usize,
    features: usize,
    scope: String,
}

impl SeqBuilder {
    /// Starts a graph with a `Data` layer of token ids, shape
    /// `(batch, seq)`.
    pub fn new(batch: usize, seq: usize) -> Self {
        let mut graph = LayerGraph::default();
        graph.push(Layer::new(
            "input_ids",
            LayerOp::Data,
            TensorShape(vec![batch, seq]),
        ));
        Self {
            graph,
            batch,
            seq,
            features: 1,
            scope: String::new(),
        }
    }

    /// The batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The sequence length.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Current trailing feature dimension.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Sets the name scope prepended to subsequent layer names
    /// (`"layer_0/attention"` → `layer_0/attention/<name>`).
    pub fn scoped(&mut self, scope: impl Into<String>) -> &mut Self {
        self.scope = scope.into();
        self
    }

    fn name(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_owned()
        } else {
            format!("{}/{}", self.scope, name)
        }
    }

    fn token_shape(&self) -> TensorShape {
        TensorShape(vec![self.batch, self.seq, self.features])
    }

    /// Token + position embedding lookup into a `d_model`-wide table.
    pub fn embed(&mut self, vocab: usize, d_model: usize) -> &mut Self {
        self.features = d_model;
        let shape = self.token_shape();
        self.graph.push(Layer::new(
            self.name("embeddings/GatherV2"),
            LayerOp::Embedding { vocab, d_model },
            shape,
        ));
        self
    }

    /// The full scaled-dot-product attention chain of one block: fused QKV
    /// projection, `Q·Kᵀ` scores, softmax, `scores·V` context, and output
    /// projection. Requires the current feature dim to split evenly over
    /// `heads`.
    pub fn attention(&mut self, heads: usize) -> &mut Self {
        assert!(
            heads > 0 && self.features % heads == 0,
            "features {} not divisible into {heads} heads",
            self.features
        );
        let p = AttentionParams {
            batch: self.batch,
            seq: self.seq,
            heads,
            head_dim: self.features / heads,
        };
        let d = self.features;
        let (b, s) = (self.batch, self.seq);
        self.graph.push(Layer::new(
            self.name("attention/self/qkv/MatMul"),
            LayerOp::QkvProjection(p),
            TensorShape(vec![b, s, 3 * d]),
        ));
        self.graph.push(Layer::new(
            self.name("attention/self/scores/BatchMatMul"),
            LayerOp::AttentionScores(p),
            TensorShape(vec![b, heads, s, s]),
        ));
        self.graph.push(Layer::new(
            self.name("attention/self/Softmax"),
            LayerOp::AttentionSoftmax(p),
            TensorShape(vec![b, heads, s, s]),
        ));
        self.graph.push(Layer::new(
            self.name("attention/self/context/BatchMatMul"),
            LayerOp::AttentionContext(p),
            TensorShape(vec![b, s, d]),
        ));
        self.graph.push(Layer::new(
            self.name("attention/output/dense/MatMul"),
            LayerOp::AttentionOutput(p),
            TensorShape(vec![b, s, d]),
        ));
        self
    }

    /// The KV-cache decode counterpart of [`SeqBuilder::attention`] for a
    /// seq=1 graph: cache append, GEMV-shaped QKV projection, then either
    /// the materialized scores→softmax→context chain streaming the cached
    /// K/V (`fused == false`) or the single FlashAttention-style fused
    /// kernel (`fused == true`), and the output projection. `cache_len` is
    /// the attended context length including the step's new token.
    pub fn decode_attention(&mut self, heads: usize, cache_len: usize, fused: bool) -> &mut Self {
        assert_eq!(self.seq, 1, "decode attention requires a seq=1 graph");
        assert!(
            heads > 0 && self.features % heads == 0,
            "features {} not divisible into {heads} heads",
            self.features
        );
        let p = DecodeParams {
            batch: self.batch,
            cache_len,
            heads,
            head_dim: self.features / heads,
        };
        let d = self.features;
        let b = self.batch;
        self.graph.push(Layer::new(
            self.name("attention/self/qkv/DecodeMatMul"),
            LayerOp::DecodeQkvProjection(p),
            TensorShape(vec![b, 1, 3 * d]),
        ));
        self.graph.push(Layer::new(
            self.name("attention/self/kv_cache/Append"),
            LayerOp::KvCacheAppend(p),
            TensorShape(vec![b, 2, cache_len, d]),
        ));
        if fused {
            self.graph.push(Layer::new(
                self.name("attention/self/FlashDecode"),
                LayerOp::FlashDecodeAttention(p),
                TensorShape(vec![b, 1, d]),
            ));
        } else {
            self.graph.push(Layer::new(
                self.name("attention/self/scores/DecodeBatchMatMul"),
                LayerOp::DecodeAttentionScores(p),
                TensorShape(vec![b, heads, 1, cache_len]),
            ));
            self.graph.push(Layer::new(
                self.name("attention/self/DecodeSoftmax"),
                LayerOp::DecodeAttentionSoftmax(p),
                TensorShape(vec![b, heads, 1, cache_len]),
            ));
            self.graph.push(Layer::new(
                self.name("attention/self/context/DecodeBatchMatMul"),
                LayerOp::DecodeAttentionContext(p),
                TensorShape(vec![b, 1, d]),
            ));
        }
        self.graph.push(Layer::new(
            self.name("attention/output/dense/DecodeMatMul"),
            LayerOp::DecodeAttentionOutput(p),
            TensorShape(vec![b, 1, d]),
        ));
        self
    }

    /// Token-wise dense layer lowered to a weight-streaming decode GEMV —
    /// the seq=1 counterpart of [`SeqBuilder::linear`].
    pub fn decode_linear(&mut self, name: &str, out_features: usize) -> &mut Self {
        let in_features = self.features;
        self.features = out_features;
        let shape = self.token_shape();
        self.graph.push(Layer::new(
            self.name(name),
            LayerOp::DecodeLinear {
                in_features,
                out_features,
            },
            shape,
        ));
        self
    }

    /// Residual element-wise add.
    pub fn residual_add(&mut self, name: &str) -> &mut Self {
        let shape = self.token_shape();
        self.graph
            .push(Layer::new(self.name(name), LayerOp::AddN(2), shape));
        self
    }

    /// Layer normalization over the feature dimension.
    pub fn layer_norm(&mut self, name: &str) -> &mut Self {
        let shape = self.token_shape();
        self.graph
            .push(Layer::new(self.name(name), LayerOp::LayerNorm, shape));
        self
    }

    /// Token-wise dense layer: `(batch·seq, features) → out_features`.
    pub fn linear(&mut self, name: &str, out_features: usize) -> &mut Self {
        let in_features = self.features;
        self.features = out_features;
        let shape = self.token_shape();
        self.graph.push(Layer::new(
            self.name(name),
            LayerOp::MatMul {
                in_features,
                out_features,
            },
            shape,
        ));
        self
    }

    /// GELU activation.
    pub fn gelu(&mut self) -> &mut Self {
        let shape = self.token_shape();
        self.graph
            .push(Layer::new(self.name("Gelu"), LayerOp::Gelu, shape));
        self
    }

    /// Softmax over the trailing feature dimension (per token).
    pub fn softmax(&mut self, name: &str) -> &mut Self {
        let shape = self.token_shape();
        self.graph
            .push(Layer::new(self.name(name), LayerOp::Softmax, shape));
        self
    }

    /// Finishes the graph.
    pub fn finish(self) -> LayerGraph {
        self.graph
    }

    /// Number of layers so far.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether only the data layer exists so far.
    pub fn is_empty(&self) -> bool {
        self.graph.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_shapes_through_conv_and_pool() {
        let mut b = GraphBuilder::new(8, 3, 224, 224);
        b.conv(64, 7, 2, 3); // -> 112
        assert_eq!(b.spatial(), (112, 112));
        assert_eq!(b.channels(), 64);
        b.maxpool(3, 2); // -> 56
        assert_eq!(b.spatial(), (56, 56));
        b.fc(1000);
        let g = b.finish();
        assert_eq!(g.layers.last().unwrap().out_shape, TensorShape::nf(8, 1000));
    }

    #[test]
    fn conv_names_follow_tensorflow_convention() {
        let mut b = GraphBuilder::new(1, 3, 32, 32);
        b.conv(8, 3, 1, 1).conv(8, 3, 1, 1);
        let g = b.finish();
        assert_eq!(g.layers[1].name, "conv2d/Conv2D");
        assert_eq!(g.layers[2].name, "conv2d_1/Conv2D");
    }

    #[test]
    fn conv_bn_relu_emits_three_layers() {
        let mut b = GraphBuilder::new(1, 3, 32, 32);
        b.conv_bn_relu(8, 3, 1, 1);
        let g = b.finish();
        let types: Vec<&str> = g.layers.iter().map(|l| l.op.type_name()).collect();
        assert_eq!(types, vec!["Data", "Conv2D", "BatchNorm", "Relu"]);
    }

    #[test]
    fn first_layer_is_data() {
        let g = GraphBuilder::new(4, 3, 8, 8).finish();
        assert_eq!(g.layers[0].op.type_name(), "Data");
        assert_eq!(g.batch(), 4);
    }

    #[test]
    fn concat_overrides_channels() {
        let mut b = GraphBuilder::new(1, 64, 28, 28);
        b.concat(256);
        assert_eq!(b.channels(), 256);
    }

    #[test]
    fn seq_builder_tracks_tokens_and_scopes_names() {
        let mut b = SeqBuilder::new(2, 64);
        b.embed(1000, 128);
        assert_eq!(b.features(), 128);
        b.scoped("layer_0").attention(4);
        b.scoped("layer_0/ffn")
            .linear("dense/MatMul", 512)
            .gelu()
            .linear("dense_1/MatMul", 128)
            .layer_norm("LayerNorm");
        let g = b.finish();
        assert_eq!(g.layers[0].op.type_name(), "Data");
        assert_eq!(g.batch(), 2);
        // attention chain emitted all five ops under the scope
        let qkv = g
            .layers
            .iter()
            .find(|l| l.name == "layer_0/attention/self/qkv/MatMul")
            .unwrap();
        assert_eq!(qkv.out_shape, TensorShape(vec![2, 64, 384]));
        assert!(g.layers.iter().any(|l| l.op.type_name() == "BatchMatMulQK"));
        // ffn restores the model dim
        assert_eq!(
            g.layers.last().unwrap().out_shape,
            TensorShape(vec![2, 64, 128])
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn seq_builder_rejects_ragged_heads() {
        let mut b = SeqBuilder::new(1, 8);
        b.embed(100, 130);
        b.attention(4);
    }

    #[test]
    fn global_pool_collapses_spatial() {
        let mut b = GraphBuilder::new(2, 512, 7, 7);
        b.global_pool();
        assert_eq!(b.spatial(), (1, 1));
        let g = b.finish();
        assert_eq!(g.layers.last().unwrap().out_shape.elements(), 2 * 512);
    }
}
