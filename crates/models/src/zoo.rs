//! The model registry: Table VIII's 55 TensorFlow models and Table X's 10
//! MXNet counterparts, with published accuracy and frozen-graph sizes —
//! plus the GEMM-bound transformer extension tier
//! ([`Task::LanguageModeling`], ids 56–58).

use crate::{
    alexnet, densenet, detection, inception, mobilenet, resnet, segmentation, srgan, transformer,
    vgg,
};
use resnet::ResNetVersion;
use serde::{Deserialize, Serialize};
use xsp_framework::LayerGraph;

/// The task a model solves (Table VIII, extended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Image classification.
    ImageClassification,
    /// Object detection.
    ObjectDetection,
    /// Instance segmentation.
    InstanceSegmentation,
    /// Semantic segmentation.
    SemanticSegmentation,
    /// Super resolution.
    SuperResolution,
    /// Language modeling / NLP inference (transformer tier; not in the
    /// paper's tables).
    LanguageModeling,
}

impl Task {
    /// Two-letter code used in the paper's tables.
    pub fn code(self) -> &'static str {
        match self {
            Task::ImageClassification => "IC",
            Task::ObjectDetection => "OD",
            Task::InstanceSegmentation => "IS",
            Task::SemanticSegmentation => "SS",
            Task::SuperResolution => "SR",
            Task::LanguageModeling => "LM",
        }
    }

    /// The accuracy metric entries of this task report by default. Entries
    /// can override it ([`ModelEntry::metric`]) — language models in
    /// particular split between F1 (extractive QA) and perplexity
    /// (generative LM).
    pub fn default_metric(self) -> AccuracyMetric {
        match self {
            Task::ImageClassification => AccuracyMetric::Top1,
            Task::ObjectDetection | Task::InstanceSegmentation => AccuracyMetric::MeanAp,
            Task::SemanticSegmentation => AccuracyMetric::MeanIou,
            Task::SuperResolution => AccuracyMetric::Psnr,
            Task::LanguageModeling => AccuracyMetric::F1,
        }
    }
}

/// The kind of quality number a zoo entry's `accuracy` field holds. The
/// paper's tables are vision-only and print bare numbers; making the metric
/// explicit lets mixed-task tables (Table VIII + the LM tier) label each
/// row correctly instead of implying everything is top-1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccuracyMetric {
    /// ImageNet top-1 accuracy, percent.
    Top1,
    /// COCO mean average precision.
    MeanAp,
    /// Mean intersection-over-union, percent.
    MeanIou,
    /// Peak signal-to-noise ratio, dB.
    Psnr,
    /// SQuAD-style F1 score.
    F1,
    /// Language-model perplexity (lower is better).
    Perplexity,
}

impl AccuracyMetric {
    /// Short unit label for table cells ("" for top-1, matching the
    /// paper's bare numbers).
    pub fn suffix(self) -> &'static str {
        match self {
            AccuracyMetric::Top1 => "",
            AccuracyMetric::MeanAp => " mAP",
            AccuracyMetric::MeanIou => " mIOU",
            AccuracyMetric::Psnr => " dB",
            AccuracyMetric::F1 => " F1",
            AccuracyMetric::Perplexity => " ppl",
        }
    }

    /// Whether lower values mean better quality (perplexity).
    pub fn lower_is_better(self) -> bool {
        matches!(self, AccuracyMetric::Perplexity)
    }
}

/// A zoo entry: metadata plus the graph builder.
#[derive(Clone)]
pub struct ModelEntry {
    /// Table VIII / Table X row id (56+ for the transformer tier).
    pub id: u32,
    /// Model name as the paper prints it.
    pub name: &'static str,
    /// Task.
    pub task: Task,
    /// Published quality number, in the units of `metric`
    /// (`None` for SRGAN).
    pub accuracy: Option<f64>,
    /// What `accuracy` measures.
    pub metric: AccuracyMetric,
    /// Frozen-graph size, MB (Table VIII).
    pub graph_size_mb: f64,
    /// Builds the static layer graph for a batch size.
    pub build: fn(usize) -> LayerGraph,
}

impl ModelEntry {
    /// Builds the graph at `batch`.
    pub fn graph(&self, batch: usize) -> LayerGraph {
        (self.build)(batch)
    }

    /// Formats the accuracy for a table cell: bare number for top-1 (the
    /// paper's style), metric-suffixed otherwise, `-` when unpublished.
    pub fn accuracy_cell(&self) -> String {
        match self.accuracy {
            Some(a) => format!("{a:.2}{}", self.metric.suffix()),
            None => "-".to_owned(),
        }
    }
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("task", &self.task.code())
            .finish()
    }
}

// Individual builder fns (monomorphic fn pointers for the registry).
fn m01(b: usize) -> LayerGraph {
    inception::inception_resnet_v2(b)
}
fn m02(b: usize) -> LayerGraph {
    inception::inception_v4(b)
}
fn m03(b: usize) -> LayerGraph {
    inception::inception_v3(b)
}
fn m04(b: usize) -> LayerGraph {
    resnet::resnet_v2(b, 152)
}
fn m05(b: usize) -> LayerGraph {
    resnet::resnet_v2(b, 101)
}
fn m06(b: usize) -> LayerGraph {
    resnet::resnet_v1(b, 152)
}
fn m07(b: usize) -> LayerGraph {
    resnet::mlperf_resnet50_v15(b)
}
fn m08(b: usize) -> LayerGraph {
    resnet::resnet_v1(b, 101)
}
fn m09(b: usize) -> LayerGraph {
    resnet::resnet(
        b,
        152,
        ResNetVersion::V1 {
            stride_on_3x3: false,
        },
        1000,
    )
}
fn m10(b: usize) -> LayerGraph {
    resnet::resnet_v2(b, 50)
}
fn m11(b: usize) -> LayerGraph {
    resnet::resnet_v1(b, 50)
}
fn m12(b: usize) -> LayerGraph {
    resnet::resnet(
        b,
        50,
        ResNetVersion::V1 {
            stride_on_3x3: false,
        },
        1000,
    )
}
fn m13(b: usize) -> LayerGraph {
    inception::inception_v2(b)
}
fn m14(b: usize) -> LayerGraph {
    densenet::densenet121(b)
}
fn m15(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 1.0, 224)
}
fn m16(b: usize) -> LayerGraph {
    vgg::vgg(b, 16)
}
fn m17(b: usize) -> LayerGraph {
    vgg::vgg(b, 19)
}
fn m18(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 1.0, 224)
}
fn m19(b: usize) -> LayerGraph {
    inception::inception_v1(b, true, 1000)
}
fn m20(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 1.0, 192)
}
fn m21(b: usize) -> LayerGraph {
    inception::inception_v1(b, true, 1000)
}
fn m22(b: usize) -> LayerGraph {
    inception::inception_v1(b, false, 1000)
}
fn m23(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.75, 224)
}
fn m24(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 1.0, 160)
}
fn m25(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.75, 192)
}
fn m26(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.75, 160)
}
fn m27(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 1.0, 128)
}
fn m28(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.5, 224)
}
fn m29(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.75, 128)
}
fn m30(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.5, 192)
}
fn m31(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.5, 160)
}
fn m32(b: usize) -> LayerGraph {
    alexnet::alexnet(b)
}
fn m33(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.5, 128)
}
fn m34(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.25, 224)
}
fn m35(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.25, 192)
}
fn m36(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.25, 160)
}
fn m37(b: usize) -> LayerGraph {
    mobilenet::mobilenet_v1(b, 0.25, 128)
}
fn m38(b: usize) -> LayerGraph {
    detection::faster_rcnn_nas(b)
}
fn m39(b: usize) -> LayerGraph {
    detection::faster_rcnn_resnet101(b)
}
fn m40(b: usize) -> LayerGraph {
    detection::ssd_mobilenet_v1_fpn(b)
}
fn m41(b: usize) -> LayerGraph {
    detection::faster_rcnn_resnet50(b)
}
fn m42(b: usize) -> LayerGraph {
    detection::faster_rcnn_inception_v2(b)
}
fn m43(b: usize) -> LayerGraph {
    detection::ssd_inception_v2(b)
}
fn m44(b: usize) -> LayerGraph {
    detection::ssd_mobilenet_v1(b, 115)
}
fn m45(b: usize) -> LayerGraph {
    detection::ssd_mobilenet_v2(b)
}
fn m46(b: usize) -> LayerGraph {
    detection::ssd_resnet34(b)
}
fn m47(b: usize) -> LayerGraph {
    detection::ssd_mobilenet_v1_ppn(b)
}
fn m48(b: usize) -> LayerGraph {
    segmentation::mask_rcnn_inception_resnet_v2(b)
}
fn m49(b: usize) -> LayerGraph {
    segmentation::mask_rcnn_resnet101_v2(b)
}
fn m50(b: usize) -> LayerGraph {
    segmentation::mask_rcnn_resnet50_v2(b)
}
fn m51(b: usize) -> LayerGraph {
    segmentation::mask_rcnn_inception_v2(b)
}
fn m52(b: usize) -> LayerGraph {
    segmentation::deeplabv3_xception65(b)
}
fn m53(b: usize) -> LayerGraph {
    segmentation::deeplabv3_mobilenet_v2(b, 1.0)
}
fn m54(b: usize) -> LayerGraph {
    segmentation::deeplabv3_mobilenet_v2(b, 0.5)
}
fn m55(b: usize) -> LayerGraph {
    srgan::srgan(b)
}
fn m56(b: usize) -> LayerGraph {
    transformer::bert_base(b, 384)
}
fn m57(b: usize) -> LayerGraph {
    transformer::bert_large(b, 384)
}
fn m58(b: usize) -> LayerGraph {
    transformer::gpt2_small(b, 256)
}

/// The 55 TensorFlow models of Table VIII, in table order.
pub fn tensorflow_models() -> Vec<ModelEntry> {
    use Task::*;
    let e = |id: u32,
             name: &'static str,
             task: Task,
             accuracy: Option<f64>,
             graph_size_mb: f64,
             build: fn(usize) -> LayerGraph| ModelEntry {
        id,
        name,
        task,
        accuracy,
        metric: task.default_metric(),
        graph_size_mb,
        build,
    };
    vec![
        e(
            1,
            "Inception_ResNet_v2",
            ImageClassification,
            Some(80.40),
            214.0,
            m01,
        ),
        e(
            2,
            "Inception_v4",
            ImageClassification,
            Some(80.20),
            163.0,
            m02,
        ),
        e(
            3,
            "Inception_v3",
            ImageClassification,
            Some(78.00),
            91.0,
            m03,
        ),
        e(
            4,
            "ResNet_v2_152",
            ImageClassification,
            Some(77.80),
            231.0,
            m04,
        ),
        e(
            5,
            "ResNet_v2_101",
            ImageClassification,
            Some(77.00),
            170.0,
            m05,
        ),
        e(
            6,
            "ResNet_v1_152",
            ImageClassification,
            Some(76.80),
            230.0,
            m06,
        ),
        e(
            7,
            "MLPerf_ResNet50_v1.5",
            ImageClassification,
            Some(76.46),
            103.0,
            m07,
        ),
        e(
            8,
            "ResNet_v1_101",
            ImageClassification,
            Some(76.40),
            170.0,
            m08,
        ),
        e(
            9,
            "AI_Matrix_ResNet152",
            ImageClassification,
            Some(75.93),
            230.0,
            m09,
        ),
        e(
            10,
            "ResNet_v2_50",
            ImageClassification,
            Some(75.60),
            98.0,
            m10,
        ),
        e(
            11,
            "ResNet_v1_50",
            ImageClassification,
            Some(75.20),
            98.0,
            m11,
        ),
        e(
            12,
            "AI_Matrix_ResNet50",
            ImageClassification,
            Some(74.38),
            98.0,
            m12,
        ),
        e(
            13,
            "Inception_v2",
            ImageClassification,
            Some(73.90),
            43.0,
            m13,
        ),
        e(
            14,
            "AI_Matrix_DenseNet121",
            ImageClassification,
            Some(73.29),
            31.0,
            m14,
        ),
        e(
            15,
            "MLPerf_MobileNet_v1",
            ImageClassification,
            Some(71.68),
            17.0,
            m15,
        ),
        e(16, "VGG16", ImageClassification, Some(71.50), 528.0, m16),
        e(17, "VGG19", ImageClassification, Some(71.10), 548.0, m17),
        e(
            18,
            "MobileNet_v1_1.0_224",
            ImageClassification,
            Some(70.90),
            16.0,
            m18,
        ),
        e(
            19,
            "AI_Matrix_GoogleNet",
            ImageClassification,
            Some(70.01),
            27.0,
            m19,
        ),
        e(
            20,
            "MobileNet_v1_1.0_192",
            ImageClassification,
            Some(70.00),
            16.0,
            m20,
        ),
        e(
            21,
            "Inception_v1",
            ImageClassification,
            Some(69.80),
            26.0,
            m21,
        ),
        e(
            22,
            "BVLC_GoogLeNet_Caffe",
            ImageClassification,
            Some(68.70),
            27.0,
            m22,
        ),
        e(
            23,
            "MobileNet_v1_0.75_224",
            ImageClassification,
            Some(68.40),
            10.0,
            m23,
        ),
        e(
            24,
            "MobileNet_v1_1.0_160",
            ImageClassification,
            Some(68.00),
            16.0,
            m24,
        ),
        e(
            25,
            "MobileNet_v1_0.75_192",
            ImageClassification,
            Some(67.20),
            10.0,
            m25,
        ),
        e(
            26,
            "MobileNet_v1_0.75_160",
            ImageClassification,
            Some(65.30),
            10.0,
            m26,
        ),
        e(
            27,
            "MobileNet_v1_1.0_128",
            ImageClassification,
            Some(65.20),
            16.0,
            m27,
        ),
        e(
            28,
            "MobileNet_v1_0.5_224",
            ImageClassification,
            Some(63.30),
            5.2,
            m28,
        ),
        e(
            29,
            "MobileNet_v1_0.75_128",
            ImageClassification,
            Some(62.10),
            10.0,
            m29,
        ),
        e(
            30,
            "MobileNet_v1_0.5_192",
            ImageClassification,
            Some(61.70),
            5.2,
            m30,
        ),
        e(
            31,
            "MobileNet_v1_0.5_160",
            ImageClassification,
            Some(59.10),
            5.2,
            m31,
        ),
        e(
            32,
            "BVLC_AlexNet_Caffe",
            ImageClassification,
            Some(57.10),
            233.0,
            m32,
        ),
        e(
            33,
            "MobileNet_v1_0.5_128",
            ImageClassification,
            Some(56.30),
            5.2,
            m33,
        ),
        e(
            34,
            "MobileNet_v1_0.25_224",
            ImageClassification,
            Some(49.80),
            1.9,
            m34,
        ),
        e(
            35,
            "MobileNet_v1_0.25_192",
            ImageClassification,
            Some(47.70),
            1.9,
            m35,
        ),
        e(
            36,
            "MobileNet_v1_0.25_160",
            ImageClassification,
            Some(45.50),
            1.9,
            m36,
        ),
        e(
            37,
            "MobileNet_v1_0.25_128",
            ImageClassification,
            Some(41.50),
            1.9,
            m37,
        ),
        e(
            38,
            "Faster_RCNN_NAS",
            ObjectDetection,
            Some(43.0),
            405.0,
            m38,
        ),
        e(
            39,
            "Faster_RCNN_ResNet101",
            ObjectDetection,
            Some(32.0),
            187.0,
            m39,
        ),
        e(
            40,
            "SSD_MobileNet_v1_FPN",
            ObjectDetection,
            Some(32.0),
            49.0,
            m40,
        ),
        e(
            41,
            "Faster_RCNN_ResNet50",
            ObjectDetection,
            Some(30.0),
            115.0,
            m41,
        ),
        e(
            42,
            "Faster_RCNN_Inception_v2",
            ObjectDetection,
            Some(28.0),
            54.0,
            m42,
        ),
        e(
            43,
            "SSD_Inception_v2",
            ObjectDetection,
            Some(24.0),
            97.0,
            m43,
        ),
        e(
            44,
            "MLPerf_SSD_MobileNet_v1_300x300",
            ObjectDetection,
            Some(23.0),
            28.0,
            m44,
        ),
        e(
            45,
            "SSD_MobileNet_v2",
            ObjectDetection,
            Some(22.0),
            66.0,
            m45,
        ),
        e(
            46,
            "MLPerf_SSD_ResNet34_1200x1200",
            ObjectDetection,
            Some(20.0),
            81.0,
            m46,
        ),
        e(
            47,
            "SSD_MobileNet_v1_PPN",
            ObjectDetection,
            Some(20.0),
            10.0,
            m47,
        ),
        e(
            48,
            "Mask_RCNN_Inception_ResNet_v2",
            InstanceSegmentation,
            Some(36.0),
            254.0,
            m48,
        ),
        e(
            49,
            "Mask_RCNN_ResNet101_v2",
            InstanceSegmentation,
            Some(33.0),
            212.0,
            m49,
        ),
        e(
            50,
            "Mask_RCNN_ResNet50_v2",
            InstanceSegmentation,
            Some(29.0),
            138.0,
            m50,
        ),
        e(
            51,
            "Mask_RCNN_Inception_v2",
            InstanceSegmentation,
            Some(25.0),
            64.0,
            m51,
        ),
        e(
            52,
            "DeepLabv3_Xception_65",
            SemanticSegmentation,
            Some(87.8),
            439.0,
            m52,
        ),
        e(
            53,
            "DeepLabv3_MobileNet_v2",
            SemanticSegmentation,
            Some(80.25),
            8.8,
            m53,
        ),
        e(
            54,
            "DeepLabv3_MobileNet_v2_DM0.5",
            SemanticSegmentation,
            Some(71.83),
            7.6,
            m54,
        ),
        e(55, "SRGAN", SuperResolution, None, 5.9, m55),
    ]
}

/// The transformer tier (not in the paper's tables): BERT-Base/Large with
/// the MLPerf-style SQuAD v1.1 head at sequence length 384, and a GPT-2
/// small decoder at sequence length 256. These are the zoo's GEMM-bound
/// models; quality numbers are the published SQuAD F1 / WikiText-2
/// perplexity figures.
pub fn language_models() -> Vec<ModelEntry> {
    use Task::LanguageModeling;
    let e = |id: u32,
             name: &'static str,
             accuracy: f64,
             metric: AccuracyMetric,
             graph_size_mb: f64,
             build: fn(usize) -> LayerGraph| ModelEntry {
        id,
        name,
        task: LanguageModeling,
        accuracy: Some(accuracy),
        metric,
        graph_size_mb,
        build,
    };
    vec![
        e(
            56,
            "BERT-Base_SQuAD_384",
            88.50,
            AccuracyMetric::F1,
            436.0,
            m56,
        ),
        e(
            57,
            "BERT-Large_SQuAD_384",
            90.87,
            AccuracyMetric::F1,
            1335.0,
            m57,
        ),
        e(
            58,
            "GPT2_Small_256",
            29.41,
            AccuracyMetric::Perplexity,
            651.0,
            m58,
        ),
    ]
}

/// Every registered model: the 55 TensorFlow CNNs plus the transformer
/// tier, in id order.
pub fn all_models() -> Vec<ModelEntry> {
    let mut models = tensorflow_models();
    models.extend(language_models());
    models
}

/// The 10 MXNet Gluon models of Table X. Ids match the comparable
/// TensorFlow model in Table VIII.
pub fn mxnet_models() -> Vec<ModelEntry> {
    tensorflow_models()
        .into_iter()
        .filter(|m| matches!(m.id, 4 | 5 | 6 | 8 | 10 | 11 | 18 | 23 | 28 | 34))
        .collect()
}

/// Looks a model up by id (Table VIII ids 1–55, transformer tier 56–58).
pub fn by_id(id: u32) -> Option<ModelEntry> {
    all_models().into_iter().find(|m| m.id == id)
}

/// Looks a model up by name, across every tier.
pub fn by_name(name: &str) -> Option<ModelEntry> {
    all_models().into_iter().find(|m| m.name == name)
}

/// The 37 image-classification models of Table IX.
pub fn image_classification_models() -> Vec<ModelEntry> {
    tensorflow_models()
        .into_iter()
        .filter(|m| m.task == Task::ImageClassification)
        .collect()
}

/// Why a forgiving [`lookup`] failed — structured so every consumer (the
/// CLI's `--model` flag, the daemon's `Open` frame) renders the same
/// guidance, nearest zoo entries included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupError {
    /// No entry matched, even forgivingly; `nearest` holds the closest
    /// `(id, name)` pairs by edit distance over normalized names,
    /// closest first.
    Unknown {
        /// The query as given.
        query: String,
        /// Closest zoo entries, `(id, name)`, closest first.
        nearest: Vec<(u32, &'static str)>,
    },
    /// The query prefix-matched more than one entry.
    Ambiguous {
        /// The query as given.
        query: String,
        /// Every `(id, name)` the prefix matched, in id order.
        matches: Vec<(u32, &'static str)>,
    },
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let list = |pairs: &[(u32, &'static str)]| {
            pairs
                .iter()
                .map(|(id, name)| format!("{id} {name}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        match self {
            LookupError::Unknown { query, nearest } => {
                write!(
                    f,
                    "unknown model '{query}'; nearest: {} (try: xsp list-models)",
                    list(nearest)
                )
            }
            LookupError::Ambiguous { query, matches } => {
                write!(f, "ambiguous model '{query}': matches {}", list(matches))
            }
        }
    }
}

impl std::error::Error for LookupError {}

fn normalize(s: &str) -> String {
    s.to_ascii_lowercase().replace('-', "_")
}

/// Classic Levenshtein edit distance — small strings, O(a·b) DP row.
fn edit_distance(a: &str, b: &str) -> usize {
    let b_chars: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b_chars.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b_chars.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b_chars.len()]
}

/// Forgiving model lookup across every tier: exact name first, then
/// case-insensitive with `-`/`_` interchangeable, then unique-prefix
/// (`bert-base` → BERT-Base_SQuAD_384). An exact normalized match wins
/// outright, so a full name that happens to prefix another entry
/// (DeepLabv3_MobileNet_v2 vs ..._DM0.5) is never reported ambiguous.
/// Failures come back as a structured [`LookupError`] carrying the nearest
/// zoo ids/names.
pub fn lookup(name: &str) -> Result<ModelEntry, LookupError> {
    if let Some(exact) = by_name(name) {
        return Ok(exact);
    }
    let needle = normalize(name);
    if let Some(exact) = all_models()
        .into_iter()
        .find(|m| normalize(m.name) == needle)
    {
        return Ok(exact);
    }
    let mut matches: Vec<ModelEntry> = all_models()
        .into_iter()
        .filter(|m| normalize(m.name).starts_with(&needle))
        .collect();
    match matches.len() {
        1 => Ok(matches.remove(0)),
        0 => {
            let mut scored: Vec<(usize, u32, &'static str)> = all_models()
                .iter()
                .map(|m| (edit_distance(&needle, &normalize(m.name)), m.id, m.name))
                .collect();
            scored.sort_by_key(|a| (a.0, a.1));
            Err(LookupError::Unknown {
                query: name.to_owned(),
                nearest: scored
                    .into_iter()
                    .take(3)
                    .map(|(_, id, n)| (id, n))
                    .collect(),
            })
        }
        _ => Err(LookupError::Ambiguous {
            query: name.to_owned(),
            matches: matches.into_iter().map(|m| (m.id, m.name)).collect(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_forgiving() {
        assert_eq!(lookup("BERT-Base_SQuAD_384").unwrap().id, 56);
        assert_eq!(lookup("bert-base").unwrap().id, 56);
        assert_eq!(lookup("gpt2_small_256").unwrap().id, 58);
    }

    #[test]
    fn lookup_unknown_lists_nearest() {
        let err = lookup("GPT2_Smal_256").unwrap_err();
        match &err {
            LookupError::Unknown { nearest, .. } => {
                assert_eq!(nearest.first().map(|(id, _)| *id), Some(58));
                assert_eq!(nearest.len(), 3);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        assert!(err.to_string().contains("GPT2_Small_256"));
        assert!(err.to_string().contains("list-models"));
    }

    #[test]
    fn lookup_ambiguous_lists_all_matches() {
        let err = lookup("bert").unwrap_err();
        match err {
            LookupError::Ambiguous { matches, .. } => {
                assert_eq!(
                    matches.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                    vec![56, 57]
                );
            }
            other => panic!("expected Ambiguous, got {other:?}"),
        }
    }

    #[test]
    fn fifty_five_tensorflow_models() {
        let models = tensorflow_models();
        assert_eq!(models.len(), 55);
        // ids are 1..=55 in order
        for (i, m) in models.iter().enumerate() {
            assert_eq!(m.id, i as u32 + 1);
        }
    }

    #[test]
    fn ten_mxnet_models() {
        let models = mxnet_models();
        assert_eq!(models.len(), 10);
        let ids: Vec<u32> = models.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![4, 5, 6, 8, 10, 11, 18, 23, 28, 34]);
    }

    #[test]
    fn thirty_seven_ic_models() {
        assert_eq!(image_classification_models().len(), 37);
    }

    #[test]
    fn ic_models_sorted_by_accuracy() {
        let ic = image_classification_models();
        for w in ic.windows(2) {
            assert!(
                w[0].accuracy.unwrap() >= w[1].accuracy.unwrap(),
                "{} vs {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn lookup_by_name_and_id() {
        let m = by_name("MLPerf_ResNet50_v1.5").unwrap();
        assert_eq!(m.id, 7);
        assert_eq!(by_id(7).unwrap().name, "MLPerf_ResNet50_v1.5");
        assert!(by_name("NotAModel").is_none());
        // lookups cover the transformer tier too
        assert_eq!(by_id(56).unwrap().name, "BERT-Base_SQuAD_384");
        assert_eq!(by_name("GPT2_Small_256").unwrap().id, 58);
    }

    #[test]
    fn all_graphs_build_at_batch_1() {
        for m in all_models() {
            let g = m.graph(1);
            assert!(!g.is_empty(), "{} built empty", m.name);
            assert_eq!(g.batch(), 1, "{}", m.name);
            assert_eq!(g.layers[0].op.type_name(), "Data", "{}", m.name);
        }
    }

    #[test]
    fn task_distribution_matches_table_viii() {
        let models = tensorflow_models();
        let count = |t: Task| models.iter().filter(|m| m.task == t).count();
        assert_eq!(count(Task::ImageClassification), 37);
        assert_eq!(count(Task::ObjectDetection), 10);
        assert_eq!(count(Task::InstanceSegmentation), 4);
        assert_eq!(count(Task::SemanticSegmentation), 3);
        assert_eq!(count(Task::SuperResolution), 1);
        // the paper's tables stay untouched by the extension tier
        assert_eq!(count(Task::LanguageModeling), 0);
    }

    #[test]
    fn srgan_has_no_accuracy() {
        assert!(by_id(55).unwrap().accuracy.is_none());
        assert_eq!(by_id(55).unwrap().accuracy_cell(), "-");
    }

    #[test]
    fn language_model_tier_is_registered() {
        let lm = language_models();
        assert_eq!(lm.len(), 3);
        let ids: Vec<u32> = lm.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![56, 57, 58]);
        assert!(lm.iter().all(|m| m.task == Task::LanguageModeling));
        assert_eq!(all_models().len(), 58);
        // ids stay unique and ordered across the whole registry
        for w in all_models().windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn accuracy_metrics_print_per_task() {
        // vision rows keep the paper's bare top-1 style
        assert_eq!(by_id(1).unwrap().accuracy_cell(), "80.40");
        // detection/segmentation rows carry their unit
        assert_eq!(by_id(38).unwrap().accuracy_cell(), "43.00 mAP");
        assert_eq!(by_id(52).unwrap().accuracy_cell(), "87.80 mIOU");
        // language models split between F1 and perplexity
        assert_eq!(by_id(56).unwrap().accuracy_cell(), "88.50 F1");
        let gpt = by_id(58).unwrap();
        assert_eq!(gpt.accuracy_cell(), "29.41 ppl");
        assert!(gpt.metric.lower_is_better());
        assert!(!by_id(56).unwrap().metric.lower_is_better());
    }

    #[test]
    fn language_model_graph_sizes_match_weights() {
        for m in language_models() {
            let weights = m.graph(1).weights_mb();
            let relative = (weights - m.graph_size_mb).abs() / m.graph_size_mb;
            assert!(
                relative < 0.05,
                "{}: weights {weights:.1} MB vs published {} MB",
                m.name,
                m.graph_size_mb
            );
        }
    }
}
